package search

import (
	"encoding/binary"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/conf"
	"repro/internal/ga"
)

// TPE is a from-scratch tree-structured Parzen estimator — the Bayesian
// optimizer LOCAT and OnlineTune tune Spark with, here over the mixed
// int/float/bool/enum space of internal/conf. Instead of modeling
// p(y|x) like a GP, TPE models two densities over configurations: l(x)
// from the best γ-quantile of observations and g(x) from the rest, and
// proposes the candidate maximizing the expected-improvement ratio
// l(x)/g(x) (Bergstra et al. 2011, Eq. 15 — the EI-optimal acquisition
// reduces to the density ratio).
//
// Each density factorizes into per-parameter 1-D Parzen estimators
// chosen by parameter shape:
//
//   - Bool, Enum, and narrow Int parameters (≤ 17 values): a
//     Dirichlet-smoothed categorical (add-one prior), so unseen values
//     keep non-zero proposal mass.
//   - Wide positive Int parameters spanning ≥ 2 decades (partition
//     counts, buffer sizes): Gaussian kernels in log space, matching
//     the multiplicative way such knobs act.
//   - Everything else: Gaussian kernels in linear space with bandwidth
//     span/√n floored at 5% of the span, plus one uniform prior kernel
//     so the proposal never collapses onto the observations.
//
// Rounds draw Candidates configurations from l, rank them by
// Σ log l − log g, and evaluate the top BatchSize through the shared
// batch-evaluation fast lane (ga.BatchObjective / worker chunks /
// ga.GenomeCache). All randomness is drawn serially from one seeded
// source and evaluation merges are order-deterministic, so results are
// bit-identical at any GOMAXPROCS or worker count. The zero value is
// ready to use.
type TPE struct {
	// Gamma is the quantile split: the best ⌈γ·n⌉ observations form the
	// "good" density l(x). 0 selects the default 0.25.
	Gamma float64
	// Startup is how many observations (Options.Init first, then uniform
	// random) are collected before density modeling begins. 0 selects
	// the default 20.
	Startup int
	// Candidates is how many proposals are drawn from l(x) per round
	// before EI-ratio ranking. 0 selects the default 3×BatchSize.
	Candidates int
	// BatchSize is how many top-ranked candidates are evaluated per
	// round. 0 selects the default max(8, Budget/64) — batches scale
	// with the budget so a paper-budget run refits the densities ~64
	// times instead of once per candidate.
	BatchSize int
}

// Name implements Searcher.
func (*TPE) Name() string { return "tpe" }

// maxGood caps the good-density observation count: past a few dozen
// kernels the l density stops sharpening and sampling just slows down.
const maxGood = 25

// maxBad caps the bad-density kernel count. The bad set otherwise grows
// with the whole observation history, and g(x) evaluation is linear in
// its kernels — an evenly-strided fitness subsample keeps the density's
// shape at constant cost.
const maxBad = 100

// Search implements Searcher. Options.Budget counts candidate
// considerations: startup draws and every ranked candidate selected for
// a round consume budget whether the cache replays them or not, so a
// TPE run and a GA run at equal Budget consider equally many
// configurations.
func (t *TPE) Search(space *conf.Space, obj Objective, opt Options) Result {
	span := opt.Obs.StartSpan("search.tpe")
	defer span.End()

	gamma := t.Gamma
	if gamma <= 0 || gamma >= 1 {
		gamma = 0.25
	}
	startup := t.Startup
	if startup <= 0 {
		startup = 20
	}
	batch := t.BatchSize
	if batch <= 0 {
		batch = max(8, opt.Budget/64)
	}
	cands := t.Candidates
	if cands <= 0 {
		cands = 3 * batch
	}

	res := Result{BestFitness: math.Inf(1)}
	if opt.Budget <= 0 {
		return res
	}
	defer func() {
		opt.Obs.Counter("search.tpe.evaluations").Add(int64(res.Evaluations))
	}()

	rng := rand.New(rand.NewSource(opt.Seed))
	d := space.Len()

	cache := opt.Cache
	if cache == nil {
		cache = ga.NewGenomeCache()
	}
	keyBuf := make([]byte, 0, 8*d)
	keyOf := func(x []float64) string {
		keyBuf = keyBuf[:0]
		for _, v := range x {
			keyBuf = binary.LittleEndian.AppendUint64(keyBuf, math.Float64bits(v))
		}
		return string(keyBuf)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = min(runtime.GOMAXPROCS(0), runtime.NumCPU())
	}

	// The observation history the densities are fit to.
	xs := make([][]float64, 0, opt.Budget)
	ys := make([]float64, 0, opt.Budget)

	// evalBatch scores a block of candidates the way ga.Minimize's
	// evaluator does: cache lookups first, then one pass over the unique
	// unseen configurations fanned out across workers, then a serial
	// merge in candidate order — so the best-so-far tie-breaking is
	// identical at any worker count or cache state.
	evalBatch := func(X [][]float64) {
		fitX := make([]float64, len(X))
		var uniq [][]float64
		var keys []string
		var rows [][]int
		seen := make(map[string]int, len(X))
		for i, x := range X {
			k := keyOf(x)
			if v, ok := cache.Lookup(k); ok {
				fitX[i] = v
				continue
			}
			if j, ok := seen[k]; ok {
				rows[j] = append(rows[j], i)
				continue
			}
			seen[k] = len(uniq)
			uniq = append(uniq, x)
			keys = append(keys, k)
			rows = append(rows, []int{i})
		}
		m := len(uniq)
		vals := make([]float64, m)
		if w := min(workers, m); w <= 1 {
			if opt.BatchObj != nil {
				opt.BatchObj(uniq, vals)
			} else {
				for j, x := range uniq {
					vals[j] = obj(x)
				}
			}
		} else {
			var wg sync.WaitGroup
			for c := 0; c < w; c++ {
				lo, hi := c*m/w, (c+1)*m/w
				if lo == hi {
					continue
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					if opt.BatchObj != nil {
						opt.BatchObj(uniq[lo:hi], vals[lo:hi])
					} else {
						for j := lo; j < hi; j++ {
							vals[j] = obj(uniq[j])
						}
					}
				}(lo, hi)
			}
			wg.Wait()
		}
		res.Evaluations += m
		for j, v := range vals {
			cache.Store(keys[j], v)
			for _, i := range rows[j] {
				fitX[i] = v
			}
		}
		for i, v := range fitX {
			xs = append(xs, X[i])
			ys = append(ys, v)
			if v < res.BestFitness {
				res.BestFitness = v
				res.Best = append(res.Best[:0], X[i]...)
			}
		}
	}

	// Startup: seed vectors first, uniform random for the rest.
	n0 := min(startup, opt.Budget)
	X0 := make([][]float64, 0, n0)
	for _, v := range opt.Init {
		if len(X0) == n0 {
			break
		}
		if len(v) != d {
			continue
		}
		x := make([]float64, d)
		for i := range v {
			x[i] = space.Param(i).Clamp(v[i])
		}
		X0 = append(X0, x)
	}
	for len(X0) < n0 {
		x := make([]float64, d)
		space.SampleInto(x, rng)
		X0 = append(X0, x)
	}
	evalBatch(X0)
	spent := n0
	res.History = append(res.History, res.BestFitness)

	order := make([]int, 0, opt.Budget)
	for spent < opt.Budget {
		// Split observations into good (best ⌈γ·n⌉, capped) and bad by
		// fitness, ties broken by observation order.
		n := len(ys)
		order = order[:0]
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		sort.SliceStable(order, func(a, b int) bool { return ys[order[a]] < ys[order[b]] })
		nGood := int(math.Ceil(gamma * float64(n)))
		if nGood < 1 {
			nGood = 1
		}
		if nGood > maxGood {
			nGood = maxGood
		}

		// The bad side would otherwise grow with the whole history; an
		// evenly-strided subsample over the fitness ordering keeps its
		// spread (near-good through worst) at bounded kernel count.
		bad := order[nGood:]
		if len(bad) > maxBad {
			strided := make([]int, maxBad)
			for j := 0; j < maxBad; j++ {
				strided[j] = bad[j*(len(bad)-1)/(maxBad-1)]
			}
			bad = strided
		}

		// Per-parameter Parzen estimators for both densities.
		lK := make([]parzen, d)
		gK := make([]parzen, d)
		vbuf := make([]float64, 0, n)
		for i := 0; i < d; i++ {
			p := space.Param(i)
			vbuf = vbuf[:0]
			for _, oi := range order[:nGood] {
				vbuf = append(vbuf, xs[oi][i])
			}
			lK[i] = newParzen(p, vbuf)
			vbuf = vbuf[:0]
			for _, oi := range bad {
				vbuf = append(vbuf, xs[oi][i])
			}
			gK[i] = newParzen(p, vbuf)
		}

		// Draw candidates from l and rank by the EI ratio.
		C := make([][]float64, cands)
		scores := make([]float64, cands)
		for c := range C {
			x := make([]float64, d)
			s := 0.0
			for i := 0; i < d; i++ {
				v := lK[i].sample(rng)
				x[i] = v
				s += lK[i].logDensity(v) - gK[i].logDensity(v)
			}
			C[c] = x
			scores[c] = s
		}
		rank := make([]int, cands)
		for i := range rank {
			rank[i] = i
		}
		sort.SliceStable(rank, func(a, b int) bool { return scores[rank[a]] > scores[rank[b]] })

		take := min(batch, min(cands, opt.Budget-spent))
		sel := make([][]float64, take)
		for j := 0; j < take; j++ {
			sel[j] = C[rank[j]]
		}
		evalBatch(sel)
		spent += take
		res.History = append(res.History, res.BestFitness)
	}
	return res
}

// parzen is a 1-D density over one parameter's encoded values,
// supporting ancestral sampling and log-density evaluation.
type parzen interface {
	sample(rng *rand.Rand) float64
	logDensity(v float64) float64
}

// newParzen fits the kernel shape matching the parameter to the observed
// values (which may be empty — the estimator degrades to its prior).
func newParzen(p *conf.Param, vals []float64) parzen {
	if isCategorical(p) {
		return newCatParzen(p, vals)
	}
	return newNumParzen(p, vals, isLogScale(p))
}

// isCategorical reports whether the parameter's values are few enough to
// model as a smoothed histogram: Bool, Enum, and Int spanning ≤ 17
// distinct values.
func isCategorical(p *conf.Param) bool {
	if p.Kind == conf.Bool || p.Kind == conf.Enum {
		return true
	}
	return p.Kind == conf.Int && p.Span() <= 16
}

// isLogScale reports whether a wide positive Int parameter should be
// modeled in log space: at least two decades of multiplicative range.
func isLogScale(p *conf.Param) bool {
	return p.Kind == conf.Int && p.Min >= 1 && p.Max >= 100*p.Min
}

// catParzen is a Dirichlet-smoothed categorical over the discrete values
// Min..Max: probability (count+1)/(n+K), so unseen values keep mass.
type catParzen struct {
	min  float64
	logw []float64
	cum  []float64
}

func newCatParzen(p *conf.Param, vals []float64) *catParzen {
	k := int(p.Span()) + 1
	w := make([]float64, k)
	for i := range w {
		w[i] = 1
	}
	total := float64(k)
	for _, v := range vals {
		i := int(math.Round(v - p.Min))
		if i < 0 {
			i = 0
		} else if i >= k {
			i = k - 1
		}
		w[i]++
		total++
	}
	c := &catParzen{min: p.Min, logw: make([]float64, k), cum: make([]float64, k)}
	acc := 0.0
	for i := range w {
		w[i] /= total
		acc += w[i]
		c.logw[i] = math.Log(w[i])
		c.cum[i] = acc
	}
	return c
}

func (c *catParzen) sample(rng *rand.Rand) float64 {
	r := rng.Float64()
	for i, cm := range c.cum {
		if r < cm {
			return c.min + float64(i)
		}
	}
	return c.min + float64(len(c.cum)-1)
}

func (c *catParzen) logDensity(v float64) float64 {
	i := int(math.Round(v - c.min))
	if i < 0 {
		i = 0
	} else if i >= len(c.logw) {
		i = len(c.logw) - 1
	}
	return c.logw[i]
}

// numParzen is a uniform-weighted Gaussian kernel mixture (optionally in
// log space) plus one uniform prior kernel over the parameter's range.
// Bandwidths are per-kernel and adaptive — each kernel's σ is the larger
// gap to its sorted neighbors (range bounds at the edges), clipped to
// [span/100, span]. Clustered observations therefore get tight kernels,
// which is what lets the search keep refining locally once the good set
// converges; a fixed span-fraction bandwidth plateaus at that fraction's
// resolution.
type numParzen struct {
	p        *conf.Param
	mus      []float64
	sigmas   []float64
	logSpace bool
	lo, hi   float64
}

func newNumParzen(p *conf.Param, vals []float64, logSpace bool) *numParzen {
	lo, hi := p.Min, p.Max
	if logSpace {
		lo, hi = math.Log(p.Min), math.Log(p.Max)
	}
	mus := make([]float64, len(vals))
	for i, v := range vals {
		if logSpace {
			if v < p.Min {
				v = p.Min
			}
			mus[i] = math.Log(v)
		} else {
			mus[i] = v
		}
	}
	sort.Float64s(mus)
	span := hi - lo
	sigmas := make([]float64, len(mus))
	for i, mu := range mus {
		left, right := mu-lo, hi-mu
		if i > 0 {
			left = mu - mus[i-1]
		}
		if i < len(mus)-1 {
			right = mus[i+1] - mu
		}
		s := math.Max(left, right)
		if minS := span / 100; s < minS {
			s = minS
		}
		if s > span {
			s = span
		}
		sigmas[i] = s
	}
	return &numParzen{p: p, mus: mus, sigmas: sigmas, logSpace: logSpace, lo: lo, hi: hi}
}

func (k *numParzen) sample(rng *rand.Rand) float64 {
	width := k.hi - k.lo
	var x float64
	if i := rng.Intn(len(k.mus) + 1); i == len(k.mus) {
		x = k.lo + rng.Float64()*width
	} else {
		x = k.mus[i] + k.sigmas[i]*rng.NormFloat64()
	}
	if k.logSpace {
		x = math.Exp(x)
	}
	return k.p.Clamp(x)
}

func (k *numParzen) logDensity(v float64) float64 {
	width := k.hi - k.lo
	if width < 1e-12 {
		// Degenerate range: the density is a constant spike; it cancels
		// between l and g, so any constant works.
		return 0
	}
	x := v
	if k.logSpace {
		if x < 1e-300 {
			x = 1e-300
		}
		x = math.Log(x)
	}
	w := 1 / float64(len(k.mus)+1)
	pdf := w / width
	invRoot := 1 / math.Sqrt(2*math.Pi)
	for i, mu := range k.mus {
		z := (x - mu) / k.sigmas[i]
		pdf += w * invRoot / k.sigmas[i] * math.Exp(-0.5*z*z)
	}
	return math.Log(pdf + 1e-300)
}
