package search

import (
	"math"
	"math/rand"

	"repro/internal/conf"
	"repro/internal/obs"
)

// Anneal implements simulated annealing over the configuration space: a
// random walk that always accepts improvements and accepts regressions
// with probability exp(-Δ/T) under a geometric cooling schedule. It
// completes the ablation set around the paper's GA choice (§3.3): like
// recursive random search it escapes local optima stochastically, but with
// a tunable acceptance temperature rather than restarts.
func Anneal(space *conf.Space, obj Objective, budget int, seed int64, reg ...*obs.Registry) Result {
	obj = track(reg, "anneal", obj)
	rng := rand.New(rand.NewSource(seed))
	d := space.Len()

	cur := space.Random(rng).Vector()
	fCur := obj(cur)
	res := Result{Best: append([]float64(nil), cur...), BestFitness: fCur, Evaluations: 1}

	// Temperature starts at the scale of early objective swings and
	// cools to ~1e-3 of it across the budget.
	t0 := math.Abs(fCur) + 1e-9
	cooling := math.Pow(1e-3, 1/math.Max(1, float64(budget)))
	temp := t0

	for res.Evaluations < budget {
		// Perturb 1-3 random genes within a shrinking neighbourhood.
		cand := append([]float64(nil), cur...)
		genes := 1 + rng.Intn(3)
		for g := 0; g < genes; g++ {
			j := rng.Intn(d)
			p := space.Param(j)
			span := p.Span() * (0.05 + 0.45*temp/t0)
			cand[j] = p.Clamp(cand[j] + (rng.Float64()*2-1)*span)
		}
		f := obj(cand)
		res.Evaluations++
		if f < res.BestFitness {
			res.BestFitness = f
			res.Best = append([]float64(nil), cand...)
		}
		if f < fCur || rng.Float64() < math.Exp(-(f-fCur)/math.Max(1e-12, temp)) {
			cur, fCur = cand, f
		}
		temp *= cooling
	}
	return res
}
