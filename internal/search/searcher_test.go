package search

import (
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/conf"
	"repro/internal/ga"
	"repro/internal/obs"
)

func TestDefaultRegistryNames(t *testing.T) {
	want := []string{"anneal", "ga", "pattern", "random", "rrs", "tpe"}
	if got := Default().Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestRegistryLookupUnknown(t *testing.T) {
	_, err := Default().Lookup("simplex")
	if err == nil || !strings.Contains(err.Error(), "simplex") {
		t.Fatalf("Lookup(simplex) err = %v, want unknown-searcher error naming it", err)
	}
}

func TestNewRegistryRejectsBadNames(t *testing.T) {
	if _, err := NewRegistry(funcSearcher{"random", Random}, funcSearcher{"random", Random}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := NewRegistry(funcSearcher{"", Random}); err == nil {
		t.Error("empty name accepted")
	}
}

// TestAllRegisteredSearchersReturnLegalVectors extends the free-function
// legality test to the registry: every searcher reachable by name must
// return a full-length vector with every gene inside its parameter's
// range, and must report at least one real evaluation.
func TestAllRegisteredSearchersReturnLegalVectors(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	reg := Default()
	for _, name := range reg.Names() {
		s, err := reg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Search(space, obj, Options{Budget: 400, Seed: 2})
		if len(res.Best) != space.Len() {
			t.Errorf("%s: best has %d genes, want %d", name, len(res.Best), space.Len())
			continue
		}
		for i, v := range res.Best {
			p := space.Param(i)
			if v < p.Min || v > p.Max {
				t.Errorf("%s: gene %d (%s) = %v outside [%v, %v]", name, i, p.Name, v, p.Min, p.Max)
			}
		}
		if res.Evaluations <= 0 {
			t.Errorf("%s: %d evaluations", name, res.Evaluations)
		}
		if math.IsInf(res.BestFitness, 1) {
			t.Errorf("%s: no best found", name)
		}
	}
}

// TestRegistryDeterministicAcrossGOMAXPROCS pins the Searcher contract:
// every registered searcher must return a bit-identical Result whether
// the process runs on one CPU or many.
func TestRegistryDeterministicAcrossGOMAXPROCS(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	reg := Default()
	for _, name := range reg.Names() {
		s, _ := reg.Lookup(name)
		opt := Options{Budget: 400, Seed: 11}
		prev := runtime.GOMAXPROCS(1)
		one := s.Search(space, obj, opt)
		runtime.GOMAXPROCS(prev)
		many := s.Search(space, obj, opt)
		if !reflect.DeepEqual(one, many) {
			t.Errorf("%s: Result differs across GOMAXPROCS:\n 1: %+v\n n: %+v", name, one, many)
		}
	}
}

// TestGASearcherMatchesMinimize pins the seed-trajectory guarantee: the
// registered "ga" searcher at the equal-consideration budget GABudget
// implies must reproduce a direct ga.Minimize call exactly — same best
// vector, fitness, history, and evaluation count.
func TestGASearcherMatchesMinimize(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)

	gaOpt := ga.Options{PopSize: 30, Generations: 6, Seed: 4}
	direct := ga.Minimize(space, ga.Objective(obj), nil, gaOpt)
	viaReg := GASearcher{Opt: ga.Options{PopSize: 30}}.Search(space, obj, Options{
		Budget: GABudget(gaOpt), // 30×7 = 210 → derives Generations = 6
		Seed:   4,
	})

	if !reflect.DeepEqual(viaReg.Best, direct.Best) {
		t.Error("best vector differs from ga.Minimize")
	}
	if viaReg.BestFitness != direct.BestFitness {
		t.Errorf("best fitness %v != %v", viaReg.BestFitness, direct.BestFitness)
	}
	if !reflect.DeepEqual(viaReg.History, direct.History) {
		t.Error("history differs from ga.Minimize")
	}
	if viaReg.Evaluations != direct.Evaluations {
		t.Errorf("evaluations %d != %d", viaReg.Evaluations, direct.Evaluations)
	}
}

func TestGABudgetDefaults(t *testing.T) {
	if got := GABudget(ga.Options{}); got != 100*101 {
		t.Errorf("GABudget(defaults) = %d, want 10100", got)
	}
	if got := GABudget(ga.Options{PopSize: 30, Generations: 6}); got != 210 {
		t.Errorf("GABudget(30×6) = %d, want 210", got)
	}
}

// TestTPEBeatsRandomAtEqualBudget is the statistical claim the optimizer
// exists for: at the same candidate budget, fitting densities to the
// history must beat blind sampling on a smooth objective — on average
// over seeds and on a clear majority of them.
func TestTPEBeatsRandomAtEqualBudget(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	const budget = 600
	wins, tpeSum, rndSum := 0, 0.0, 0.0
	seeds := []int64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		tpe := (&TPE{}).Search(space, obj, Options{Budget: budget, Seed: seed})
		rnd := Random(space, obj, budget, seed)
		if tpe.Evaluations > budget {
			t.Fatalf("seed %d: TPE overspent: %d > %d", seed, tpe.Evaluations, budget)
		}
		if tpe.BestFitness < rnd.BestFitness {
			wins++
		}
		tpeSum += tpe.BestFitness
		rndSum += rnd.BestFitness
	}
	if wins < 4 {
		t.Errorf("TPE beat random on %d of %d seeds, want >= 4", wins, len(seeds))
	}
	if tpeSum >= rndSum {
		t.Errorf("mean TPE fitness %.5f not below mean random %.5f", tpeSum/5, rndSum/5)
	}
}

func TestTPECountsEvaluations(t *testing.T) {
	space := conf.StandardSpace()
	reg := obs.NewRegistry()
	res := (&TPE{}).Search(space, sphere(space), Options{Budget: 200, Seed: 3, Obs: reg})
	if got := reg.Counter("search.tpe.evaluations").Value(); got != int64(res.Evaluations) {
		t.Errorf("counter %d != Result.Evaluations %d", got, res.Evaluations)
	}
	if res.Evaluations <= 0 || res.Evaluations > 200 {
		t.Errorf("evaluations = %d, want in (0, 200]", res.Evaluations)
	}
}

func TestTPEZeroBudget(t *testing.T) {
	space := conf.StandardSpace()
	res := (&TPE{}).Search(space, sphere(space), Options{Budget: 0, Seed: 1})
	if res.Evaluations != 0 || res.Best != nil || !math.IsInf(res.BestFitness, 1) {
		t.Fatalf("zero budget returned %d evals, best %v, fitness %v",
			res.Evaluations, res.Best, res.BestFitness)
	}
}

// TestTPEUsesInitSeeds checks the Init contract: a seeded known-good
// vector must be scored during startup, so the result can never be
// worse than the seed itself.
func TestTPEUsesInitSeeds(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	mids := make([]float64, space.Len())
	for i := 0; i < space.Len(); i++ {
		p := space.Param(i)
		mids[i] = p.Clamp((p.Min + p.Max) / 2)
	}
	res := (&TPE{}).Search(space, obj, Options{Budget: 60, Seed: 9, Init: [][]float64{mids}})
	if res.BestFitness > obj(mids)+1e-12 {
		t.Errorf("best %.6f worse than the seeded vector's %.6f", res.BestFitness, obj(mids))
	}
}

// TestTPECacheInvariance pins the Options contract that cache state
// never changes the search trajectory — only how many objective calls
// are real. A warm shared cache must reproduce the cold run's best,
// fitness, and history with fewer (or equal) real evaluations.
func TestTPECacheInvariance(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	cache := ga.NewGenomeCache()
	opt := Options{Budget: 300, Seed: 7, Cache: cache}
	cold := (&TPE{}).Search(space, obj, opt)
	warm := (&TPE{}).Search(space, obj, opt)
	if !reflect.DeepEqual(cold.Best, warm.Best) || cold.BestFitness != warm.BestFitness {
		t.Error("warm-cache run found a different best")
	}
	if !reflect.DeepEqual(cold.History, warm.History) {
		t.Error("warm-cache run followed a different history")
	}
	if warm.Evaluations > cold.Evaluations {
		t.Errorf("warm run made more real evaluations (%d) than cold (%d)",
			warm.Evaluations, cold.Evaluations)
	}
}
