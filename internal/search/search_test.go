package search

import (
	"math"
	"testing"

	"repro/internal/conf"
)

// sphere has its optimum at each parameter's midpoint.
func sphere(space *conf.Space) Objective {
	return func(x []float64) float64 {
		s := 0.0
		for i, v := range x {
			p := space.Param(i)
			span := p.Span()
			if span == 0 {
				continue
			}
			d := (v - (p.Min+p.Max)/2) / span
			s += d * d
		}
		return s
	}
}

func TestRandomRespectsBudget(t *testing.T) {
	space := conf.StandardSpace()
	res := Random(space, sphere(space), 100, 1)
	if res.Evaluations != 100 {
		t.Fatalf("Evaluations = %d, want 100", res.Evaluations)
	}
	if res.Best == nil || math.IsInf(res.BestFitness, 1) {
		t.Fatal("no best found")
	}
}

func TestRecursiveRandomBeatsPlainRandom(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	budget := 600
	rr := RecursiveRandom(space, obj, budget, 1)
	plain := Random(space, obj, budget, 1)
	if rr.Evaluations > budget {
		t.Fatalf("RRS overspent: %d > %d", rr.Evaluations, budget)
	}
	// On a smooth unimodal surface the local refinement must win.
	if rr.BestFitness >= plain.BestFitness {
		t.Fatalf("RRS %.5f not better than random %.5f on a smooth objective",
			rr.BestFitness, plain.BestFitness)
	}
}

func TestPatternConvergesOnSmoothObjective(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	res := Pattern(space, obj, 3000, 1)
	plain := Random(space, obj, 3000, 1)
	if res.BestFitness >= plain.BestFitness {
		t.Fatalf("pattern search %.5f not better than random %.5f",
			res.BestFitness, plain.BestFitness)
	}
}

func TestAnnealImprovesOverStart(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	res := Anneal(space, obj, 2000, 1)
	plain := Random(space, obj, 2000, 1)
	if res.BestFitness >= plain.BestFitness {
		t.Fatalf("annealing %.5f not better than random %.5f on a smooth objective",
			res.BestFitness, plain.BestFitness)
	}
	if res.Evaluations > 2000 {
		t.Fatalf("annealing overspent: %d", res.Evaluations)
	}
}

func TestAllSearchersReturnLegalVectors(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	for name, res := range map[string]Result{
		"random":  Random(space, obj, 50, 2),
		"rrs":     RecursiveRandom(space, obj, 50, 2),
		"pattern": Pattern(space, obj, 50, 2),
		"anneal":  Anneal(space, obj, 50, 2),
	} {
		if len(res.Best) != space.Len() {
			t.Errorf("%s: best has %d genes", name, len(res.Best))
			continue
		}
		for i, v := range res.Best {
			p := space.Param(i)
			if v < p.Min || v > p.Max {
				t.Errorf("%s: gene %d = %v outside range", name, i, v)
			}
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	space := conf.StandardSpace()
	obj := sphere(space)
	if Random(space, obj, 40, 7).BestFitness != Random(space, obj, 40, 7).BestFitness {
		t.Error("Random differs across identical seeds")
	}
	if RecursiveRandom(space, obj, 40, 7).BestFitness != RecursiveRandom(space, obj, 40, 7).BestFitness {
		t.Error("RecursiveRandom differs across identical seeds")
	}
	if Pattern(space, obj, 40, 7).BestFitness != Pattern(space, obj, 40, 7).BestFitness {
		t.Error("Pattern differs across identical seeds")
	}
	if Anneal(space, obj, 40, 7).BestFitness != Anneal(space, obj, 40, 7).BestFitness {
		t.Error("Anneal differs across identical seeds")
	}
}
