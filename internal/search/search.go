// Package search is the pluggable configuration-search layer. It
// defines the Searcher interface and name-keyed Registry every layer
// (core, CLI, daemon, experiments) selects searchers through, and
// provides the implementations: the alternative searchers the paper
// considers and rejects in §3.3 — recursive random search [56] and
// pattern search [46] — plus plain random sampling, simulated
// annealing, the paper's GA (adapted from internal/ga), and a
// from-scratch TPE Bayesian optimizer.
package search

import (
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/conf"
	"repro/internal/obs"
)

// Objective maps an encoded configuration vector to the quantity being
// minimized. Random fans evaluations out over a worker pool, so objectives
// must be safe for concurrent calls (model predictions are); the
// inherently sequential searchers (RecursiveRandom, Pattern, Anneal) call
// it from a single goroutine.
type Objective func(x []float64) float64

// Result is a searcher's outcome.
type Result struct {
	Best        []float64
	BestFitness float64
	Evaluations int
	// History records the best fitness after each round (generation,
	// batch) for searchers that proceed in rounds; nil for the
	// single-sweep searchers.
	History []float64
}

// CountEvals wraps obj so every evaluation increments the named counter
// in reg ("search.<name>.evaluations"). With a nil registry the wrapper
// degenerates to a nil-counter increment, so it is always safe to apply.
func CountEvals(reg *obs.Registry, name string, obj Objective) Objective {
	c := reg.Counter("search." + name + ".evaluations")
	return func(x []float64) float64 {
		c.Inc()
		return obj(x)
	}
}

// track instruments obj when a registry was passed through a searcher's
// optional trailing argument.
func track(reg []*obs.Registry, name string, obj Objective) Objective {
	if len(reg) == 0 || reg[0] == nil {
		return obj
	}
	return CountEvals(reg[0], name, obj)
}

// Random evaluates budget uniformly random configurations and keeps the
// best — the naive baseline every model-guided searcher must beat. An
// optional registry counts its objective evaluations.
//
// The candidate stream is drawn serially (so it depends only on seed),
// evaluation fans out over GOMAXPROCS workers on disjoint chunks, and the
// winner is picked by a serial first-minimum scan — the result is
// bit-identical to the sequential loop for any scheduling.
func Random(space *conf.Space, obj Objective, budget int, seed int64, reg ...*obs.Registry) Result {
	obj = track(reg, "random", obj)
	rng := rand.New(rand.NewSource(seed))
	res := Result{BestFitness: math.Inf(1)}
	if budget <= 0 {
		return res
	}
	X := make([][]float64, budget)
	for i := range X {
		X[i] = space.Random(rng).Vector()
	}
	fs := make([]float64, budget)
	if w := min(runtime.GOMAXPROCS(0), budget); w <= 1 {
		for i, x := range X {
			fs[i] = obj(x)
		}
	} else {
		var wg sync.WaitGroup
		for c := 0; c < w; c++ {
			lo, hi := c*budget/w, (c+1)*budget/w
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					fs[i] = obj(X[i])
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	res.Evaluations = budget
	for i, f := range fs {
		if f < res.BestFitness {
			res.BestFitness = f
			res.Best = X[i]
		}
	}
	return res
}

// RecursiveRandom implements recursive random search: sample globally,
// then repeatedly re-sample inside a shrinking box around the incumbent,
// restarting globally when a region is exhausted. The paper notes its
// sensitivity to local optima — visible in the ablation bench.
func RecursiveRandom(space *conf.Space, obj Objective, budget int, seed int64, reg ...*obs.Registry) Result {
	obj = track(reg, "rrs", obj)
	rng := rand.New(rand.NewSource(seed))
	d := space.Len()
	res := Result{BestFitness: math.Inf(1)}

	const (
		exploreN = 20   // global samples per restart
		shrink   = 0.6  // box shrink factor on success
		minScale = 0.02 // region size that triggers a restart
	)
	for res.Evaluations < budget {
		// Global exploration phase.
		var center []float64
		local := math.Inf(1)
		for i := 0; i < exploreN && res.Evaluations < budget; i++ {
			x := space.Random(rng).Vector()
			f := obj(x)
			res.Evaluations++
			if f < local {
				local, center = f, x
			}
			if f < res.BestFitness {
				res.BestFitness = f
				res.Best = append([]float64(nil), x...)
			}
		}
		if center == nil {
			break
		}
		// Local exploitation: shrink a box around the incumbent.
		scale := 0.5
		fails := 0
		for scale > minScale && res.Evaluations < budget {
			x := make([]float64, d)
			for j := 0; j < d; j++ {
				p := space.Param(j)
				span := p.Span() * scale
				x[j] = p.Clamp(center[j] + (rng.Float64()*2-1)*span)
			}
			f := obj(x)
			res.Evaluations++
			if f < local {
				local, center = f, x
				scale *= shrink
				fails = 0
				if f < res.BestFitness {
					res.BestFitness = f
					res.Best = append([]float64(nil), x...)
				}
			} else if fails++; fails >= 8 {
				scale *= shrink
				fails = 0
			}
		}
	}
	return res
}

// Pattern implements coordinate pattern search (Hooke-Jeeves style): poll
// ± a step along each axis from the incumbent, halving the step on
// failure. Its slow local convergence on this space is the paper's reason
// to prefer GA.
func Pattern(space *conf.Space, obj Objective, budget int, seed int64, reg ...*obs.Registry) Result {
	obj = track(reg, "pattern", obj)
	rng := rand.New(rand.NewSource(seed))
	d := space.Len()
	x := space.Random(rng).Vector()
	fx := obj(x)
	res := Result{Best: append([]float64(nil), x...), BestFitness: fx, Evaluations: 1}

	scale := 0.25
	for res.Evaluations < budget && scale > 0.001 {
		improved := false
		for j := 0; j < d && res.Evaluations < budget; j++ {
			p := space.Param(j)
			step := p.Span() * scale
			if p.Kind != conf.Float && step < 1 {
				step = 1
			}
			for _, dir := range []float64{+1, -1} {
				cand := append([]float64(nil), x...)
				cand[j] = p.Clamp(x[j] + dir*step)
				if cand[j] == x[j] {
					continue
				}
				f := obj(cand)
				res.Evaluations++
				if f < fx {
					x, fx = cand, f
					improved = true
					break
				}
			}
		}
		if fx < res.BestFitness {
			res.BestFitness = fx
			res.Best = append([]float64(nil), x...)
		}
		if !improved {
			scale /= 2
		}
	}
	return res
}
