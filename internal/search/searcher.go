package search

import (
	"fmt"
	"sort"

	"repro/internal/conf"
	"repro/internal/ga"
	"repro/internal/obs"
)

// BatchObjective scores a whole block of configurations in one call —
// the same contract as ga.BatchObjective (model-backed objectives
// implement it with tree-at-a-time batch prediction). The alias keeps
// the two packages' batch fast lanes interchangeable without conversion.
type BatchObjective = ga.BatchObjective

// Options carries the budget and wiring a Searcher.Search call receives.
// Every field beyond Budget and Seed is optional: searchers that cannot
// use a batch objective, init seeds, or a shared cache simply ignore
// them — the contract is that the result depends only on (space,
// objective values, Budget, Seed, Init), never on Workers, BatchObj, or
// cache state.
type Options struct {
	// Budget bounds the search's candidate considerations: how many
	// configurations the searcher may score. Population searchers that
	// replay repeated genomes from a cache still count the replayed
	// candidates against Budget, so equal-Budget comparisons across
	// searchers stay fair; Result.Evaluations reports only real
	// objective calls.
	Budget int
	// Seed drives all of the searcher's randomness.
	Seed int64
	// Init optionally seeds the search with known-good vectors (the
	// paper seeds the GA population from the training set). Vectors are
	// clamped to the space; searchers without a seeding notion ignore
	// them.
	Init [][]float64
	// BatchObj, when non-nil, scores whole candidate blocks in one call
	// and must agree with the per-row objective bit for bit (the
	// model.BatchPredictor contract). Searchers that evaluate candidates
	// one at a time ignore it.
	BatchObj BatchObjective
	// Workers bounds concurrent objective evaluation (0 = GOMAXPROCS).
	// The result is identical for any value.
	Workers int
	// Cache, when non-nil, shares memoized fitness values between
	// searches of the identical objective (the daemon's idempotent
	// search traffic). Only searchers that memoize use it.
	Cache *ga.GenomeCache
	// Obs, when non-nil, receives "search.<name>" spans and
	// "search.<name>.evaluations" counters. Recording never perturbs
	// the search.
	Obs *obs.Registry
}

// Searcher finds a configuration minimizing an objective over a space
// within an evaluation budget. Implementations must be deterministic in
// (space, objective values, Options.Budget, Seed, Init) — bit-identical
// results at any GOMAXPROCS or worker count — and must return legal
// vectors (every gene inside its parameter's range).
type Searcher interface {
	// Name is the registry key ("ga", "tpe", "random", ...).
	Name() string
	// Search minimizes obj over space under opt's budget.
	Search(space *conf.Space, obj Objective, opt Options) Result
}

// Registry is an immutable name-keyed set of searchers, mirroring
// model.BackendRegistry: construct once with the searchers the binary
// supports, then look them up by the name a flag or JobSpec carries.
type Registry struct {
	byName map[string]Searcher
}

// NewRegistry builds a registry over the given searchers. Names must be
// unique and non-empty.
func NewRegistry(ss ...Searcher) (*Registry, error) {
	r := &Registry{byName: make(map[string]Searcher, len(ss))}
	for _, s := range ss {
		name := s.Name()
		if name == "" {
			return nil, fmt.Errorf("search: searcher with empty name")
		}
		if _, dup := r.byName[name]; dup {
			return nil, fmt.Errorf("search: duplicate searcher %q", name)
		}
		r.byName[name] = s
	}
	return r, nil
}

// Lookup returns the named searcher.
func (r *Registry) Lookup(name string) (Searcher, error) {
	s, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("search: unknown searcher %q (have %v)", name, r.Names())
	}
	return s, nil
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Default returns the registry of every built-in searcher: the paper's
// GA, the §3.3 ablation set (random, recursive random, pattern search,
// annealing), and the TPE Bayesian optimizer. A fresh registry per call,
// so callers can't perturb each other.
func Default() *Registry {
	r, err := NewRegistry(
		funcSearcher{"random", Random},
		funcSearcher{"rrs", RecursiveRandom},
		funcSearcher{"pattern", Pattern},
		funcSearcher{"anneal", Anneal},
		GASearcher{},
		&TPE{},
	)
	if err != nil {
		panic("search: invalid built-in registry: " + err.Error())
	}
	return r
}

// funcSearcher adapts the package's free searcher functions to the
// Searcher interface. The free functions take their whole budget as
// objective evaluations and ignore Init/BatchObj/Cache (Random
// parallelizes internally; the others are inherently sequential).
type funcSearcher struct {
	name string
	fn   func(space *conf.Space, obj Objective, budget int, seed int64, reg ...*obs.Registry) Result
}

func (f funcSearcher) Name() string { return f.name }

func (f funcSearcher) Search(space *conf.Space, obj Objective, opt Options) Result {
	sp := opt.Obs.StartSpan("search." + f.name)
	defer sp.End()
	return f.fn(space, obj, opt.Budget, opt.Seed, opt.Obs)
}

// GASearcher wraps ga.Minimize as a registered Searcher. Opt carries the
// GA hyperparameters (zero value = the paper's 100×100 setup); the
// per-call Options override its Seed, seeding, batch objective, workers,
// cache, and registry, and Options.Budget derives Generations as
// Budget/PopSize − 1 when Generations is unset — the initial population
// plus each generation scores PopSize candidates, so a GA at PopSize p
// over g generations considers exactly p×(g+1) candidates. GABudget is
// the inverse mapping. With the budget derived that way, Search
// reproduces ga.Minimize's exact seed trajectory (pinned by test).
type GASearcher struct {
	Opt ga.Options
}

// Name implements Searcher.
func (GASearcher) Name() string { return "ga" }

// GABudget returns the candidate-consideration budget of a GA
// configured by opt: PopSize×(Generations+1) with ga's defaults
// (100×100) filled in. It is the equal-budget bridge between the GA's
// population/generation knobs and Options.Budget.
func GABudget(opt ga.Options) int {
	pop, gens := opt.PopSize, opt.Generations
	if pop <= 0 {
		pop = 100
	}
	if gens <= 0 {
		gens = 100
	}
	return pop * (gens + 1)
}

// Search implements Searcher.
func (g GASearcher) Search(space *conf.Space, obj Objective, opt Options) Result {
	sp := opt.Obs.StartSpan("search.ga")
	defer sp.End()
	gaOpt := g.Opt
	gaOpt.Seed = opt.Seed
	if gaOpt.Workers == 0 {
		gaOpt.Workers = opt.Workers
	}
	if gaOpt.BatchObj == nil {
		gaOpt.BatchObj = opt.BatchObj
	}
	if gaOpt.Cache == nil {
		gaOpt.Cache = opt.Cache
	}
	if gaOpt.Obs == nil {
		gaOpt.Obs = opt.Obs
	}
	if gaOpt.Generations <= 0 && opt.Budget > 0 {
		pop := gaOpt.PopSize
		if pop <= 0 {
			pop = 100
		}
		gens := opt.Budget/pop - 1
		if gens < 1 {
			gens = 1
		}
		gaOpt.Generations = gens
	}
	res := ga.Minimize(space, ga.Objective(obj), opt.Init, gaOpt)
	opt.Obs.Counter("search.ga.evaluations").Add(int64(res.Evaluations))
	return Result{
		Best:        res.Best,
		BestFitness: res.BestFitness,
		History:     res.History,
		Evaluations: res.Evaluations,
	}
}
