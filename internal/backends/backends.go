// Package backends wires the concrete model backends into a
// model.BackendRegistry. It exists as a separate package because the
// registry type lives in internal/model, which the backend packages
// themselves import — registering them there would be a cycle.
package backends

import (
	"repro/internal/ann"
	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/rf"
	"repro/internal/rs"
	"repro/internal/svm"
)

// Default returns a registry with every built-in backend: hm (the
// paper's hierarchical model, with persistence and warm-start), rf
// (persistence), and the rs/ann/svm baselines (persistence).
func Default() *model.BackendRegistry {
	r, err := model.NewBackendRegistry(
		hm.Backend{},
		rf.Backend{},
		rs.Backend{},
		ann.Backend{},
		svm.Backend{},
	)
	if err != nil {
		// The backend list is static; a name collision is a programming
		// error, not a runtime condition.
		panic(err)
	}
	return r
}
