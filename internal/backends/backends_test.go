package backends

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// backendDS builds a small synthetic regression problem every backend
// can fit: two smooth features, an interaction, and a datasize column.
func backendDS(n int, seed int64) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := model.NewDataset([]string{"a", "b", "dsize"})
	for i := 0; i < n; i++ {
		a, b, d := rng.Float64()*10, rng.Float64()*5, 10+rng.Float64()*90
		ds.Add([]float64{a, b, d}, 5+2*a+a*b+0.1*d+rng.NormFloat64()*0.2)
	}
	return ds
}

func TestDefaultRegistry(t *testing.T) {
	reg := Default()
	want := []string{"ann", "hm", "rf", "rs", "svm"}
	names := reg.Names()
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names() = %v, want %v (sorted)", names, want)
		}
	}
	if _, err := reg.Lookup("xgboost"); err == nil {
		t.Fatal("unknown backend lookup should fail")
	}

	// The capability matrix is part of the contract: hm is the only
	// backend that can warm-start, and every backend persists.
	caps := map[string]model.Capabilities{
		"hm":  {Save: true, Load: true, Resume: true},
		"rf":  {Save: true, Load: true},
		"rs":  {Save: true, Load: true},
		"ann": {Save: true, Load: true},
		"svm": {Save: true, Load: true},
	}
	for name, want := range caps {
		b, err := reg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := model.CapabilitiesOf(b); got != want {
			t.Fatalf("%s capabilities = %+v, want %+v", name, got, want)
		}
	}
}

// TestBackendCodecRoundTrip trains every backend at quick scale, streams
// it through its own Save/Load codec, and requires the reloaded model to
// predict bit-identically via PredictBatch.
func TestBackendCodecRoundTrip(t *testing.T) {
	reg := Default()
	train := backendDS(300, 1)
	probe := backendDS(64, 2)
	out := make([]float64, len(probe.Features))
	ref := make([]float64, len(probe.Features))
	for _, name := range reg.Names() {
		b, err := reg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := b.Train(train, model.TrainOpts{Seed: 3, Quick: true})
		if err != nil {
			t.Fatalf("%s: train: %v", name, err)
		}
		var buf bytes.Buffer
		if err := b.(model.Saver).Save(m, &buf); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, err := b.(model.Loader).Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		model.PredictBatch(m, probe.Features, ref)
		model.PredictBatch(got, probe.Features, out)
		for i := range ref {
			if ref[i] != out[i] {
				t.Fatalf("%s: probe %d: reloaded model predicts %v, original %v", name, i, out[i], ref[i])
			}
		}
	}
}

// TestBackendCodecRejectsGarbage makes sure a loader fails cleanly on a
// stream written by something else rather than returning a broken model.
func TestBackendCodecRejectsGarbage(t *testing.T) {
	reg := Default()
	for _, name := range reg.Names() {
		b, _ := reg.Lookup(name)
		if _, err := b.(model.Loader).Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
			t.Fatalf("%s: loading garbage should fail", name)
		}
	}
}
