// Command enginerun executes real workloads on the mini dataflow engine
// over actual files — the repository's "run it for real" counterpart to
// the simulator-backed tools.
//
// Usage:
//
//	enginerun wordcount -in big.txt -out counts/ [-parallelism 8] [-compress]
//	enginerun terasort  -in records.dat -out sorted/ [-memory 64]
//	enginerun gen       -kind text -size 64 -out big.txt
//
// The gen subcommand synthesizes inputs with the workload generators
// (-kind text|tera, -size in MB for text or thousands of records for
// tera).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "wordcount":
		err = cmdWordCount(os.Args[2:])
	case "terasort":
		err = cmdTeraSort(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "enginerun:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: enginerun <wordcount|terasort|gen> [flags]
  enginerun gen       -kind text -size 64 -out big.txt
  enginerun wordcount -in big.txt -out counts/ [-parallelism 8] [-compress]
  enginerun terasort  -in records.dat -out sorted/ [-memory 64]`)
}

func engineFlags(fs *flag.FlagSet) (*int, *bool, *int) {
	par := fs.Int("parallelism", 8, "shuffle partitions")
	comp := fs.Bool("compress", false, "flate-compress shuffle blocks")
	mem := fs.Int("memory", 0, "shuffle memory budget in MB (0 = unbounded)")
	return par, comp, mem
}

func report(ctx *engine.Context, start time.Time) {
	m := ctx.Metrics()
	fmt.Fprintf(os.Stderr, "done in %v: %d tasks, %.1f MB shuffled, %.1f MB spilled (%d files)\n",
		time.Since(start).Round(time.Millisecond), m.TasksRun,
		float64(m.ShuffleBytesWritten)/(1<<20), float64(m.SpillBytes)/(1<<20), m.SpillFiles)
}

func cmdWordCount(args []string) error {
	fs := flag.NewFlagSet("wordcount", flag.ExitOnError)
	in := fs.String("in", "", "input text file (required)")
	out := fs.String("out", "", "output directory (required)")
	par, comp, mem := engineFlags(fs)
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("wordcount: -in and -out are required")
	}
	ctx := engine.NewContext(engine.Config{Parallelism: *par, CompressShuffle: *comp, ShuffleMemoryMB: *mem})
	start := time.Now()
	lines, err := engine.TextFile(ctx, *in, 32)
	if err != nil {
		return err
	}
	words := engine.FlatMap(lines, strings.Fields)
	counts, err := engine.ReduceByKey(
		engine.MapToPairs(words, func(w string) (string, int) { return w, 1 }),
		func(a, b int) int { return a + b })
	if err != nil {
		return err
	}
	rendered := engine.Map(counts, func(kv engine.Pair[string, int]) string {
		return fmt.Sprintf("%s\t%d", kv.Key, kv.Value)
	})
	if err := engine.SaveAsTextFile(rendered, *out); err != nil {
		return err
	}
	report(ctx, start)
	return nil
}

func cmdTeraSort(args []string) error {
	fs := flag.NewFlagSet("terasort", flag.ExitOnError)
	in := fs.String("in", "", "input record file (required)")
	out := fs.String("out", "", "output directory (required)")
	par, comp, mem := engineFlags(fs)
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("terasort: -in and -out are required")
	}
	ctx := engine.NewContext(engine.Config{Parallelism: *par, CompressShuffle: *comp, ShuffleMemoryMB: *mem})
	start := time.Now()
	lines, err := engine.TextFile(ctx, *in, 32)
	if err != nil {
		return err
	}
	records := engine.Filter(lines, func(r string) bool { return len(r) >= 10 })
	pairs := engine.MapToPairs(records, func(r string) (string, string) { return r[:10], r[10:] })
	sorted, err := engine.SortByKey(pairs, func(a, b string) bool { return a < b })
	if err != nil {
		return err
	}
	rendered := engine.Map(sorted, func(kv engine.Pair[string, string]) string { return kv.Key + kv.Value })
	if err := engine.SaveAsTextFile(rendered, *out); err != nil {
		return err
	}
	report(ctx, start)
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "text", "text or tera")
	size := fs.Int64("size", 16, "MB of text, or thousands of tera records")
	out := fs.String("out", "", "output path (required)")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	var n int64
	switch *kind {
	case "text":
		n, err = workloads.GenText(f, *size<<20, *seed)
	case "tera":
		n, err = workloads.GenTeraRecords(f, int(*size)*1000, *seed)
	default:
		return fmt.Errorf("gen: unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %.1f MB to %s\n", float64(n)/(1<<20), *out)
	return nil
}
