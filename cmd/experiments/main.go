// Command experiments regenerates the paper's tables and figures on the
// simulated substrate and prints the same rows/series the paper reports.
//
// Usage:
//
//	experiments -all            # everything, paper-scale settings
//	experiments -quick -all     # everything, reduced scale
//	experiments -fig 12a        # one figure (2, 3, 7, 8, 9, 10, 11, 12a, 12b, 13, 14)
//	experiments -fig ext        # the §2.1 KV-store generality extension
//	experiments -fig online     # online importance-screened tuning vs full DAC
//	experiments -fig searchers  # searcher head-to-head at equal budget (GA vs TPE vs ablations)
//	experiments -fig fleet      # distributed collect throughput at 1/2/4 workers
//	experiments -table 2        # one table (1, 2, 3)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "", "figure to regenerate: 2,3,7,8,9,10,11,12a,12b,13,14")
		table = flag.String("table", "", "table to regenerate: 1,2,3")
		all   = flag.Bool("all", false, "regenerate everything")
		quick = flag.Bool("quick", false, "reduced-scale settings (fast smoke run)")
	)
	flag.Parse()

	sc := experiments.FullScale()
	if *quick {
		sc = experiments.QuickScale()
	}
	if !*all && *fig == "" && *table == "" {
		flag.Usage()
		os.Exit(2)
	}

	run := func(name string, f func()) {
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		f()
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	wantFig := func(n string) bool { return *all || strings.EqualFold(*fig, n) }
	wantTable := func(n string) bool { return *all || *table == n }

	if wantTable("1") {
		run("Table 1: experimented applications", func() { fmt.Print(experiments.Table1()) })
	}
	if wantTable("2") {
		run("Table 2: 41 Spark configuration parameters", func() { fmt.Print(experiments.Table2()) })
	}
	if wantFig("2") {
		run("Fig 2: datasize sensitivity, Spark vs Hadoop", func() {
			fmt.Print(experiments.RenderFig2(experiments.Fig2(sc)))
		})
	}
	if wantFig("3") {
		run("Fig 3: prediction error of RS/ANN/SVM/RF", func() {
			rows := experiments.Fig3(sc)
			fmt.Print(experiments.RenderModelErrs(rows, []string{"RS", "ANN", "SVM", "RF"}))
		})
	}
	if wantFig("7") {
		run("Fig 7: model error vs training-set size", func() {
			steps := []int{200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000, 2400, 2800, 3200}
			if *quick {
				steps = []int{100, 200, 300, 400}
			}
			fmt.Print(experiments.RenderFig7(experiments.Fig7(sc, steps)))
		})
	}
	if wantFig("8") {
		run("Fig 8: HM error vs nt, lr, tc (PageRank)", func() {
			var cps []int
			if *quick {
				cps = []int{50, 200, 400}
			}
			fmt.Print(experiments.RenderFig8(experiments.Fig8(sc, nil, nil, cps)))
		})
	}
	if wantFig("9") {
		run("Fig 9: prediction error incl. HM", func() {
			rows := experiments.Fig9(sc)
			fmt.Print(experiments.RenderModelErrs(rows, []string{"RS", "ANN", "SVM", "RF", "HM"}))
		})
	}
	if wantFig("10") {
		run("Fig 10: error distribution, PR & TS", func() {
			n := 200
			if *quick {
				n = 60
			}
			pr, ts := experiments.Fig10(sc, n)
			fmt.Print(experiments.RenderFig10("PR", pr))
			fmt.Print(experiments.RenderFig10("TS", ts))
		})
	}

	needTuning := *all
	for _, n := range []string{"11", "12a", "12b", "13", "14"} {
		if strings.EqualFold(*fig, n) {
			needTuning = true
		}
	}
	if *table == "3" {
		needTuning = true
	}
	if needTuning {
		var outcomes []experiments.TuneOutcome
		run("Tuning pipeline (DAC + RFHOC + expert, all 6 programs)", func() {
			outcomes = experiments.TuneAll(sc)
		})
		if wantFig("11") {
			run("Fig 11: GA convergence", func() { fmt.Print(experiments.RenderFig11(outcomes)) })
		}
		if wantFig("12a") {
			run("Fig 12a: speedup over default", func() { fmt.Print(experiments.RenderFig12a(outcomes)) })
		}
		if wantFig("12b") {
			run("Fig 12b: DAC vs RFHOC vs expert", func() { fmt.Print(experiments.RenderFig12b(outcomes)) })
		}
		if wantFig("13") {
			run("Fig 13: KMeans stage breakdown", func() {
				idx := []int{0, 2, 4}
				fmt.Print(experiments.RenderFig13(experiments.Fig13(sc, outcomes, idx), idx))
			})
		}
		if wantFig("14") {
			run("Fig 14: TeraSort Stage2", func() {
				fmt.Print(experiments.RenderFig14(experiments.Fig14(sc, outcomes)))
			})
		}
		if wantTable("3") {
			run("Table 3: time cost", func() { fmt.Print(experiments.RenderTable3(outcomes)) })
		}
	}

	if *all || strings.EqualFold(*fig, "ext") {
		run("Extension (§2.1): tuning the HBase-style KV store", func() {
			fmt.Print(experiments.RenderExtension(experiments.Extension(sc)))
		})
	}

	if *all || strings.EqualFold(*fig, "validate") {
		run("Validation: engine-measured vs simulator-predicted knob directions", func() {
			fmt.Print(experiments.RenderValidate(experiments.Validate(sc)))
		})
	}

	if *all || strings.EqualFold(*fig, "importance") {
		run("Analysis: parameter importance (HM split gains)", func() {
			for _, abbr := range []string{"KM", "TS"} {
				fmt.Print(experiments.RenderImportance(abbr, experiments.Importance(sc, abbr, 10)))
			}
		})
	}

	if *all || strings.EqualFold(*fig, "subspace") {
		run("Analysis: tuning-space size (all vs top-k vs bottom-k)", func() {
			fmt.Print(experiments.RenderSubspace("TS", experiments.Subspace(sc, "TS", 8)))
		})
	}

	if *all || strings.EqualFold(*fig, "online") {
		run("Analysis: online importance-screened tuning vs full DAC", func() {
			fmt.Print(experiments.RenderOnline(experiments.OnlineVsDAC(sc, []string{"TS", "WC", "PR"})))
		})
	}

	if *all || strings.EqualFold(*fig, "searchers") {
		run("Analysis: searcher head-to-head at equal budget (GA vs TPE vs ablations)", func() {
			fmt.Print(experiments.RenderSearchers(experiments.Searchers(sc, []string{"TS", "WC", "PR"})))
		})
	}

	if *all || strings.EqualFold(*fig, "naive") {
		run("Analysis: naive best-of-N search cost (§1's infeasibility claim)", func() {
			budgets := []int{50, 200, 1000, 2000}
			if *quick {
				budgets = []int{20, 100}
			}
			fmt.Print(experiments.RenderNaive("TS", experiments.Naive(sc, "TS", budgets)))
		})
	}

	if *all || strings.EqualFold(*fig, "fleet") {
		run("Analysis: fleet scaling (sharded collect at 1/2/4 workers)", func() {
			out, err := experiments.FleetScale(sc, []int{1, 2, 4})
			if err != nil {
				fmt.Println("fleet scaling failed:", err)
				return
			}
			fmt.Print(experiments.RenderFleetScale(out))
		})
	}
}
