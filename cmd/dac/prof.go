package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profFlags registers the profiling flags every subcommand shares:
// -cpuprofile records where the command spends its time (the split scan
// and tree walks, if the optimizations hold), -memprofile records the
// heap at exit.
type profFlags struct {
	cpu *string
	mem *string
}

func addProfFlags(fs *flag.FlagSet) profFlags {
	return profFlags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this path"),
		mem: fs.String("memprofile", "", "write a heap profile to this path on exit"),
	}
}

// start begins CPU profiling when requested and returns the function to
// defer: it stops the CPU profile and writes the heap profile. Profile
// write failures are reported to stderr rather than failing the command —
// the tuning result still stands.
func (p profFlags) start() (stop func(), err error) {
	var cpuFile *os.File
	if *p.cpu != "" {
		cpuFile, err = os.Create(*p.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dac: cpuprofile:", err)
			}
		}
		if *p.mem != "" {
			f, err := os.Create(*p.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dac: memprofile:", err)
				return
			}
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dac: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "dac: memprofile:", err)
			}
		}
	}, nil
}
