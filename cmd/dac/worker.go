package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/fleet"
)

// cmdWorker runs a fleet worker agent: it registers with a dacd
// coordinator (a daemon started with -coordinator), heartbeats, leases
// sweep chunks, executes them on the local simulator, and streams the
// results back. Any number of workers may point at one coordinator; the
// merged training set is byte-identical regardless of the count
// (DESIGN.md §15). SIGINT/SIGTERM exit cleanly — in-flight leases simply
// expire and requeue on the coordinator.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	coordinator := fs.String("coordinator", "http://127.0.0.1:7411", "coordinator (dacd) base URL")
	name := fs.String("name", "", "stable worker name; reusing it after a crash revokes the dead process's leases immediately (empty = coordinator-assigned)")
	token := fs.String("auth-token", os.Getenv("DAC_TOKEN"), "shared secret for a daemon started with -auth-token (default $DAC_TOKEN)")
	parallelism := fs.Int("parallelism", runtime.GOMAXPROCS(0), "goroutines executing one leased chunk (min 1)")
	quiet := fs.Bool("quiet", false, "suppress per-chunk progress lines")
	fs.Parse(args)
	if *parallelism < 1 {
		return fmt.Errorf("worker: -parallelism must be at least 1, got %d", *parallelism)
	}

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	w := fleet.NewWorker(fleet.WorkerOptions{
		Coordinator: *coordinator,
		Name:        *name,
		Token:       *token,
		Parallelism: *parallelism,
		Logf:        logf,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	err := w.Run(ctx)
	if errors.Is(err, fleet.ErrSuperseded) {
		return fmt.Errorf("worker %s: superseded by a newer registration under the same name", w.ID())
	}
	return err
}
