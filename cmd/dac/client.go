package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
)

// cmdClient is the HTTP client for a running dacd daemon: every API
// route as a subcommand, so scripts (and the CI smoke job) don't
// hand-roll curl + JSON parsing.
//
//	dac client submit -type tune -workload TS -quick -wait
//	dac client status -id 3 [-wait]
//	dac client jobs
//	dac client cancel -id 3
//	dac client models [-name ts]
//	dac client predict -name ts -workload TS -size 30
//	dac client backends
//	dac client searchers
func cmdClient(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("client: usage: dac client <submit|status|jobs|cancel|models|predict|backends|searchers> [flags]")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "submit":
		return clientSubmit(rest)
	case "status":
		return clientStatus(rest)
	case "jobs":
		return clientGet(rest, func(string) string { return "/jobs" })
	case "cancel":
		return clientCancel(rest)
	case "models":
		return clientModels(rest)
	case "predict":
		return clientPredict(rest)
	case "backends":
		return clientGet(rest, func(string) string { return "/backends" })
	case "searchers":
		return clientGet(rest, func(string) string { return "/searchers" })
	default:
		return fmt.Errorf("client: unknown subcommand %q", sub)
	}
}

// addrFlag registers the daemon address on a client flag set.
func addrFlag(fs *flag.FlagSet) *string {
	return fs.String("addr", "http://127.0.0.1:7411", "dacd base URL")
}

// dacToken is the shared secret attached to every request when set —
// daemons started with -auth-token reject mutating calls without it.
var dacToken string

// authFlag registers -auth-token and arranges for apiDo to send it.
// Callers must invoke the returned commit after fs.Parse.
func authFlag(fs *flag.FlagSet) (commit func()) {
	tok := fs.String("auth-token", os.Getenv("DAC_TOKEN"), "shared secret for daemons started with -auth-token (default $DAC_TOKEN)")
	return func() { dacToken = *tok }
}

// apiDo performs one request and decodes the JSON body, turning the
// daemon's {"error": ...} responses into Go errors.
func apiDo(method, url string, body any) (map[string]any, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if dacToken != "" {
		req.Header.Set("Authorization", "Bearer "+dacToken)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding %s %s: %w", method, url, err)
	}
	if msg, ok := out["error"].(string); ok && resp.StatusCode >= 400 {
		return nil, fmt.Errorf("client: %s", msg)
	}
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("client: %s %s: HTTP %d", method, url, resp.StatusCode)
	}
	return out, nil
}

// printJSON renders a response for both humans and scripts (stable
// indented JSON on stdout).
func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// clientGet handles the flagless listing subcommands.
func clientGet(args []string, path func(addr string) string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	addr := addrFlag(fs)
	fs.Parse(args)
	out, err := apiDo("GET", strings.TrimRight(*addr, "/")+path(*addr), nil)
	if err != nil {
		return err
	}
	return printJSON(out)
}

func clientSubmit(args []string) error {
	fs := flag.NewFlagSet("client submit", flag.ExitOnError)
	addr := addrFlag(fs)
	specJSON := fs.String("spec", "", "raw JobSpec JSON (overrides the individual flags)")
	typ := fs.String("type", "tune", "job type (collect|train|search|tune|tune_online)")
	workload := fs.String("workload", "", "workload abbreviation")
	size := fs.Float64("size", 0, "target datasize in workload units")
	ntrain := fs.Int("ntrain", 0, "vectors to collect")
	seed := fs.Int64("seed", 0, "random seed (0 = daemon default)")
	modelName := fs.String("model", "", "registry model name")
	backend := fs.String("backend", "", "model backend (hm|rf|rs|ann|svm)")
	searcher := fs.String("searcher", "", "configuration searcher (ga|tpe|random|rrs|pattern|anneal)")
	fromJob := fs.Int64("from-job", 0, "finished collect job feeding a train job")
	warmFrom := fs.String("warm-from", "", "registered model to warm-start from")
	extraTrees := fs.Int("extra-trees", 0, "warm-start boosting budget")
	quick := fs.Bool("quick", false, "smoke-test budgets")
	hmTrees := fs.Int("hm-trees", 0, "tree budget override")
	gaPop := fs.Int("ga-pop", 0, "GA population override")
	gaGen := fs.Int("ga-generations", 0, "GA generations override")
	screenSamples := fs.Int("screen-samples", 0, "tune_online: screening sample count")
	topK := fs.Int("top-k", 0, "tune_online: parameters kept tunable after screening")
	iterations := fs.Int("iterations", 0, "tune_online: refit/search iterations")
	iterBatch := fs.Int("iter-batch", 0, "tune_online: measured candidates per iteration")
	wait := fs.Bool("wait", false, "poll until the job finishes and print its final state")
	timeout := fs.Duration("timeout", 10*time.Minute, "-wait limit")
	commitAuth := authFlag(fs)
	fs.Parse(args)
	commitAuth()

	var spec serve.JobSpec
	if *specJSON != "" {
		if err := json.Unmarshal([]byte(*specJSON), &spec); err != nil {
			return fmt.Errorf("client: parsing -spec: %w", err)
		}
	} else {
		spec = serve.JobSpec{
			Type:          serve.JobType(*typ),
			Workload:      *workload,
			Size:          *size,
			NTrain:        *ntrain,
			Seed:          *seed,
			Model:         *modelName,
			Backend:       *backend,
			Searcher:      *searcher,
			FromJob:       *fromJob,
			WarmFrom:      *warmFrom,
			ExtraTrees:    *extraTrees,
			Quick:         *quick,
			HMTrees:       *hmTrees,
			GAPop:         *gaPop,
			GAGenerations: *gaGen,
			ScreenSamples: *screenSamples,
			TopK:          *topK,
			Iterations:    *iterations,
			IterBatch:     *iterBatch,
		}
	}
	base := strings.TrimRight(*addr, "/")
	out, err := apiDo("POST", base+"/jobs", spec)
	if err != nil {
		return err
	}
	if !*wait {
		return printJSON(out)
	}
	id, ok := out["id"].(float64)
	if !ok {
		return fmt.Errorf("client: submit response had no job id: %v", out)
	}
	fmt.Fprintf(os.Stderr, "job %d submitted (deduped=%v), waiting...\n", int64(id), out["deduped"])
	return waitForJob(base, int64(id), *timeout)
}

// waitForJob polls one job until it leaves the queued/running states,
// prints its final JSON, and maps failure states to a non-zero exit.
func waitForJob(base string, id int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		out, err := apiDo("GET", fmt.Sprintf("%s/jobs/%d", base, id), nil)
		if err != nil {
			return err
		}
		state, _ := out["state"].(string)
		switch state {
		case serve.StateDone:
			return printJSON(out)
		case serve.StateFailed, serve.StateCancelled:
			printJSON(out)
			return fmt.Errorf("client: job %d %s: %v", id, state, out["error"])
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("client: job %d still %s after %s", id, state, timeout)
		}
		time.Sleep(500 * time.Millisecond)
	}
}

func clientStatus(args []string) error {
	fs := flag.NewFlagSet("client status", flag.ExitOnError)
	addr := addrFlag(fs)
	id := fs.Int64("id", 0, "job id (required)")
	wait := fs.Bool("wait", false, "poll until the job finishes")
	timeout := fs.Duration("timeout", 10*time.Minute, "-wait limit")
	fs.Parse(args)
	if *id == 0 {
		return fmt.Errorf("client: status needs -id")
	}
	base := strings.TrimRight(*addr, "/")
	if *wait {
		return waitForJob(base, *id, *timeout)
	}
	out, err := apiDo("GET", fmt.Sprintf("%s/jobs/%d", base, *id), nil)
	if err != nil {
		return err
	}
	return printJSON(out)
}

func clientCancel(args []string) error {
	fs := flag.NewFlagSet("client cancel", flag.ExitOnError)
	addr := addrFlag(fs)
	id := fs.Int64("id", 0, "job id (required)")
	commitAuth := authFlag(fs)
	fs.Parse(args)
	commitAuth()
	if *id == 0 {
		return fmt.Errorf("client: cancel needs -id")
	}
	out, err := apiDo("POST", fmt.Sprintf("%s/jobs/%d/cancel", strings.TrimRight(*addr, "/"), *id), nil)
	if err != nil {
		return err
	}
	return printJSON(out)
}

func clientModels(args []string) error {
	fs := flag.NewFlagSet("client models", flag.ExitOnError)
	addr := addrFlag(fs)
	name := fs.String("name", "", "one model's versions (default: list all)")
	fs.Parse(args)
	path := "/models"
	if *name != "" {
		path += "/" + *name
	}
	out, err := apiDo("GET", strings.TrimRight(*addr, "/")+path, nil)
	if err != nil {
		return err
	}
	return printJSON(out)
}

func clientPredict(args []string) error {
	fs := flag.NewFlagSet("client predict", flag.ExitOnError)
	addr := addrFlag(fs)
	name := fs.String("name", "", "registry model name (required)")
	version := fs.Int("version", 0, "model version (0 = latest)")
	workload := fs.String("workload", "", "workload abbreviation (for datasize units)")
	size := fs.Float64("size", 0, "datasize in workload units")
	dsizeMB := fs.Float64("dsize-mb", 0, "datasize in MB (alternative to -workload/-size)")
	loop := fs.Int("loop", 0, "repeat the predict N times and report throughput instead of one answer")
	concurrency := fs.Int("concurrency", 1, "concurrent clients for -loop")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("client: predict needs -name")
	}
	req := map[string]any{"version": *version}
	if *workload != "" {
		req["workload"] = *workload
		req["size"] = *size
	}
	if *dsizeMB > 0 {
		req["dsize_mb"] = *dsizeMB
	}
	url := fmt.Sprintf("%s/models/%s/predict", strings.TrimRight(*addr, "/"), *name)
	if *loop > 0 {
		return predictLoop(url, req, *loop, *concurrency, *version != 0)
	}
	out, err := apiDo("POST", url, req)
	if err != nil {
		return err
	}
	return printJSON(out)
}

// predictLoop drives the predict endpoint n times from c concurrent
// clients — the CLI face of the serving hot path — and prints a
// throughput/latency summary. With a pinned version (checkSame), every
// response must agree with the first: same request, same model version
// ⇒ same answer, so a mismatch means the daemon served a torn model and
// fails the run. Version 0 skips the check — a retrain landing mid-loop
// legitimately changes the answer.
func predictLoop(url string, req map[string]any, n, c int, checkSame bool) error {
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		lats      []float64
		mismatch  error
		firstPred *float64
	)
	start := time.Now()
	per := n / c
	for i := 0; i < c; i++ {
		quota := per
		if i == 0 {
			quota += n % c
		}
		wg.Add(1)
		go func(quota int) {
			defer wg.Done()
			var mine []float64
			for j := 0; j < quota; j++ {
				t0 := time.Now()
				out, err := apiDo("POST", url, json.RawMessage(body))
				if err != nil {
					mu.Lock()
					if mismatch == nil {
						mismatch = err
					}
					mu.Unlock()
					return
				}
				mine = append(mine, time.Since(t0).Seconds())
				pred, _ := out["predicted_sec"].(float64)
				if checkSame {
					mu.Lock()
					if firstPred == nil {
						v := pred
						firstPred = &v
					} else if pred != *firstPred && mismatch == nil {
						mismatch = fmt.Errorf("client: predict answered %v then %v for the same request", *firstPred, pred)
					}
					bad := mismatch != nil
					mu.Unlock()
					if bad {
						return
					}
				}
			}
			mu.Lock()
			lats = append(lats, mine...)
			mu.Unlock()
		}(quota)
	}
	wg.Wait()
	if mismatch != nil {
		return mismatch
	}
	elapsed := time.Since(start).Seconds()
	sort.Float64s(lats)
	pick := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(q*float64(len(lats)-1))] * 1e6
	}
	return printJSON(map[string]any{
		"requests":    len(lats),
		"concurrency": c,
		"elapsed_sec": elapsed,
		"qps":         float64(len(lats)) / elapsed,
		"p50_us":      pick(0.50),
		"p99_us":      pick(0.99),
	})
}
