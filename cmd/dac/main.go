// Command dac tunes Spark-style configurations for the six HiBench
// workloads on the simulated cluster, following the paper's pipeline:
// collect → model → search.
//
// Subcommands:
//
//	dac collect -workload TS -n 2000 -out ts.csv
//	    Run the collecting component and write the training set as CSV.
//
//	dac train -in ts.csv -out ts.model
//	    Fit the HM performance model on a collected CSV and persist it.
//
//	dac search -model ts.model -workload TS -size 30 -out spark-dac.conf
//	    Load a saved model and search a configuration for one target
//	    datasize, optionally writing a Spark properties file.
//
//	dac tune -workload TS -size 30
//	    Run the full pipeline in one shot and print the tuned
//	    configuration, its predicted time, and the measured speedup over
//	    the default and expert configurations. With -online, run the
//	    importance-screened online loop instead: a small screening
//	    sample, then alternating measure → refit → search iterations
//	    over the influential parameters only (DESIGN.md §14).
//
//	dac compare -workload TS
//	    Tune with DAC and RFHOC and print the four-way comparison across
//	    the workload's five Table 1 sizes.
//
//	dac show -workload TS
//	    Print the workload's description and Table 1 sizes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/backends"
	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/expert"
	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "collect":
		err = cmdCollect(os.Args[2:])
	case "tune":
		err = cmdTune(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "importance":
		err = cmdImportance(os.Args[2:])
	case "search":
		err = cmdSearch(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "client":
		err = cmdClient(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dac:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dac <collect|train|search|tune|show|compare|importance|bench|serve|worker|client> [flags]
  dac collect -workload TS -n 2000 -out ts.csv
  dac train   -in ts.csv -out ts.model          # fit HM on collected data
  dac search  -model ts.model -workload TS -size 30 [-out spark-dac.conf] [-searcher tpe]
  dac tune    -workload TS -size 30 [-ntrain 2000] [-seed 1] [-model hm|rf|rs|ann|svm] [-searcher ga|tpe|random|rrs|pattern|anneal]
  dac tune    -workload TS -size 30 -online [-screen 200] [-topk 10] [-iterations 8] [-iter-batch 32]
  dac show    -workload TS
  dac compare -workload TS [-ntrain 2000]
  dac importance -in ts.csv [-top 10]
  dac bench   [-json BENCH_model.json] [-quick]  # serial vs batched/parallel
  dac serve   [-addr :7411] [-data dacd-data] [-workers 2] [-coordinator] [-auth-token T] [-gc-keep-versions N]
  dac worker  [-coordinator http://127.0.0.1:7411] [-name w1] [-parallelism N]  # fleet sweep worker
  dac client  <submit|status|jobs|cancel|models|predict|backends> [-addr http://127.0.0.1:7411]
pipeline subcommands also accept -report (print metrics report),
-metrics <path> (write metrics JSON), -cpuprofile <path> and
-memprofile <path> (write pprof profiles)`)
}

// obsFlags registers the observability flags shared by the pipeline
// subcommands: -report prints the metrics report to stderr after the
// command finishes, and -metrics writes the same data as JSON (the schema
// is documented in DESIGN.md).
type obsFlags struct {
	report  *bool
	metrics *string
}

func addObsFlags(fs *flag.FlagSet) obsFlags {
	return obsFlags{
		report:  fs.Bool("report", false, "print the metrics report (per-phase wall-clock, simulator/model/GA counters)"),
		metrics: fs.String("metrics", "", "write metrics as JSON to this path (e.g. metrics.json)"),
	}
}

// registry returns the registry the command should instrument with, or
// nil when neither flag asked for metrics — keeping the zero-cost path.
func (o obsFlags) registry() *obs.Registry {
	if !*o.report && *o.metrics == "" {
		return nil
	}
	return obs.NewRegistry()
}

// emit renders the registry according to the flags. A nil registry (flags
// unset) emits nothing.
func (o obsFlags) emit(reg *obs.Registry) error {
	if reg == nil {
		return nil
	}
	if *o.report {
		fmt.Fprint(os.Stderr, "\n"+reg.Report())
	}
	if *o.metrics != "" {
		f, err := os.Create(*o.metrics)
		if err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics to %s\n", *o.metrics)
	}
	return nil
}

func lookupWorkload(abbr string) (*workloads.Workload, error) {
	w, err := workloads.ByAbbr(strings.ToUpper(abbr))
	if err != nil {
		abbrs := make([]string, 0, 6)
		for _, x := range workloads.All() {
			abbrs = append(abbrs, x.Abbr)
		}
		return nil, fmt.Errorf("%v (choose one of %s)", err, strings.Join(abbrs, ", "))
	}
	return w, nil
}

func newTuner(w *workloads.Workload, ntrain int, seed int64, reg *obs.Registry) *core.Tuner {
	sim := sparksim.New(cluster.Standard(), seed+7)
	sim.Instrument(reg)
	budget := experiments.PaperBudget()
	return &core.Tuner{
		Space: conf.StandardSpace(),
		// The batch executor lets the collector hand each worker's chunk
		// to one sparksim.RunBatch call (bit-identical to per-job runs).
		Exec: core.NewSimExecutor(sim, &w.Program),
		Opt: core.Options{
			NTrain: ntrain,
			HM:     budget.HM,
			GA:     budget.GA,
			Seed:   seed,
		},
		Obs: reg,
	}
}

// selectBackend validates -model and, for non-default choices, routes the
// tuner's modeling stage through that backend. The hm default keeps the
// tuner's built-in HM path — output stays byte-identical to a build
// without the backend layer.
func selectBackend(t *core.Tuner, name string, reg *obs.Registry) error {
	b, err := backends.Default().Lookup(name)
	if err != nil {
		return err
	}
	if name == "hm" {
		return nil
	}
	t.Opt.Backend = b
	t.Opt.BackendTrain = model.TrainOpts{}
	reg.Counter("model.backend." + name).Inc()
	fmt.Printf("model backend: %s\n", name)
	return nil
}

// selectSearcher validates -searcher and, for non-default choices,
// routes the tuner's searching stage through that searcher. The ga
// default keeps the tuner's built-in GA path — output stays
// byte-identical to a build without the searcher layer.
func selectSearcher(t *core.Tuner, name string, reg *obs.Registry) error {
	s, err := search.Default().Lookup(name)
	if err != nil {
		return err
	}
	if name == "ga" {
		return nil
	}
	t.Opt.Searcher = s
	reg.Counter("search.searcher." + name).Inc()
	fmt.Printf("searcher: %s\n", name)
	return nil
}

func cmdCollect(args []string) error {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	abbr := fs.String("workload", "TS", "workload abbreviation (PR, KM, BA, NW, WC, TS)")
	n := fs.Int("n", 2000, "number of performance vectors")
	out := fs.String("out", "", "output CSV path (default stdout)")
	seed := fs.Int64("seed", 1, "random seed")
	of := addObsFlags(fs)
	pf := addProfFlags(fs)
	fs.Parse(args)
	stop, err := pf.start()
	if err != nil {
		return err
	}
	defer stop()

	w, err := lookupWorkload(*abbr)
	if err != nil {
		return err
	}
	reg := of.registry()
	t := newTuner(w, *n, *seed, reg)
	sizes := t.TrainingSizesMB(w.InputMB(w.Sizes[0])*0.8, w.InputMB(w.Sizes[len(w.Sizes)-1])*1.1)
	set, ov, err := t.Collect(sizes)
	if err != nil {
		return err
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := set.WriteCSV(dst); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "collected %d vectors for %s (%.1f simulated cluster hours)\n",
		set.Len(), w.Name, ov.CollectClusterHours)
	return of.emit(reg)
}

func cmdTune(args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	abbr := fs.String("workload", "TS", "workload abbreviation")
	size := fs.Float64("size", 0, "target datasize in the workload's units (default: middle Table 1 size)")
	ntrain := fs.Int("ntrain", 2000, "training vectors to collect")
	seed := fs.Int64("seed", 1, "random seed")
	backendName := fs.String("model", "hm", "model backend (hm|rf|rs|ann|svm)")
	searcherName := fs.String("searcher", "ga", "configuration searcher (ga|tpe|random|rrs|pattern|anneal)")
	online := fs.Bool("online", false, "online importance-screened tuning: screen, then iterate measure→refit→search")
	screen := fs.Int("screen", 0, "online: screening sample count (0 = default 200)")
	topk := fs.Int("topk", 0, "online: parameters kept tunable after screening (0 = default 10)")
	iterations := fs.Int("iterations", 0, "online: refit/search iterations (0 = default 8)")
	iterBatch := fs.Int("iter-batch", 0, "online: measured candidates per iteration (0 = default 32)")
	of := addObsFlags(fs)
	pf := addProfFlags(fs)
	fs.Parse(args)
	stop, err := pf.start()
	if err != nil {
		return err
	}
	defer stop()

	w, err := lookupWorkload(*abbr)
	if err != nil {
		return err
	}
	units := *size
	if units == 0 {
		units = w.Sizes[len(w.Sizes)/2]
	}
	targetMB := w.InputMB(units)
	reg := of.registry()
	t := newTuner(w, *ntrain, *seed, reg)
	if err := selectBackend(t, *backendName, reg); err != nil {
		return err
	}
	if err := selectSearcher(t, *searcherName, reg); err != nil {
		return err
	}
	lo := w.InputMB(w.Sizes[0]) * 0.8
	hi := w.InputMB(w.Sizes[len(w.Sizes)-1]) * 1.1
	if *online {
		oo := core.OnlineOptions{
			ScreenSamples: *screen,
			TopK:          *topk,
			Iterations:    *iterations,
			IterBatch:     *iterBatch,
			Guard:         core.SimOOMGuard(cluster.Standard(), &w.Program, 0),
		}
		return tuneOnlineCLI(w, t, units, targetMB, lo, hi, oo, of, reg)
	}
	fmt.Printf("tuning %s for %g %s (%.0f MB)...\n", w.Name, units, w.Unit, targetMB)
	res, err := t.Tune(lo, hi, []float64{targetMB})
	if err != nil {
		return err
	}
	best := res.Best[targetMB]

	// Evaluate on a fresh simulator seed against the baselines.
	evalSim := sparksim.New(cluster.Standard(), 99)
	space := conf.StandardSpace()
	tDAC := evalSim.Run(&w.Program, targetMB, best).TotalSec
	tDef := evalSim.Run(&w.Program, targetMB, space.Default()).TotalSec
	tExp := evalSim.Run(&w.Program, targetMB, expert.Config(space, cluster.Standard())).TotalSec

	fmt.Printf("\ntuned configuration (spark-dac.conf):\n%s\n", best)
	fmt.Printf("\npredicted: %.1fs   measured: %.1fs\n", res.PredictedSec[targetMB], tDAC)
	fmt.Printf("default:   %.1fs   (speedup %.1fx)\n", tDef, tDef/tDAC)
	fmt.Printf("expert:    %.1fs   (speedup %.1fx)\n", tExp, tExp/tDAC)
	fmt.Printf("\noverhead: collecting %.1f simulated cluster hours, modeling %.1fs, searching %.1fs\n",
		res.Overhead.CollectClusterHours, res.Overhead.ModelTrainSec, res.Overhead.SearchSec)
	return of.emit(reg)
}

// tuneOnlineCLI drives the tune_online pipeline (DESIGN.md §14) and
// prints the screening verdict, the per-iteration progression, and the
// same baseline comparison cmdTune prints — so the two modes are
// directly comparable on one terminal.
func tuneOnlineCLI(w *workloads.Workload, t *core.Tuner, units, targetMB, lo, hi float64,
	oo core.OnlineOptions, of obsFlags, reg *obs.Registry) error {
	fmt.Printf("online tuning %s for %g %s (%.0f MB)...\n", w.Name, units, w.Unit, targetMB)
	lastPhase := ""
	res, err := t.TuneOnline(context.Background(), lo, hi, targetMB, oo, core.OnlineHooks{
		Progress: func(phase string, done, total int) {
			if phase != lastPhase {
				if lastPhase != "" {
					fmt.Fprintln(os.Stderr)
				}
				lastPhase = phase
			}
			fmt.Fprintf(os.Stderr, "\r%-7s %d/%d", phase, done, total)
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr)

	fmt.Printf("\nscreening kept %d of %d parameters:\n", len(res.Screened), t.Space.Len())
	for i, name := range res.Screened {
		fmt.Printf("%2d. %-45s %5.1f%%\n", i+1, name, res.Importance[i]*100)
	}
	fmt.Printf("\n%4s %6s %5s %8s %13s %14s %9s\n",
		"iter", "runs", "warm", "valerr", "predicted(s)", "best-meas(s)", "rejected")
	for i, it := range res.Iterations {
		warm := "no"
		if it.WarmStarted {
			warm = "yes"
		}
		fmt.Printf("%4d %6d %5s %7.1f%% %13.1f %14.1f %9d\n",
			i+1, it.Runs, warm, it.ValErr*100, it.PredictedSec, it.BestMeasuredSec, it.GuardRejected)
	}

	// Evaluate on a fresh simulator seed against the baselines, exactly
	// as the offline path does.
	evalSim := sparksim.New(cluster.Standard(), 99)
	space := conf.StandardSpace()
	tDAC := evalSim.Run(&w.Program, targetMB, res.Best).TotalSec
	tDef := evalSim.Run(&w.Program, targetMB, space.Default()).TotalSec
	tExp := evalSim.Run(&w.Program, targetMB, expert.Config(space, cluster.Standard())).TotalSec

	fmt.Printf("\ntuned configuration (spark-dac.conf):\n%s\n", res.Best)
	fmt.Printf("\npredicted: %.1fs   measured: %.1fs\n", res.PredictedSec, tDAC)
	fmt.Printf("default:   %.1fs   (speedup %.1fx)\n", tDef, tDef/tDAC)
	fmt.Printf("expert:    %.1fs   (speedup %.1fx)\n", tExp, tExp/tDAC)
	fmt.Printf("\noverhead: %d measured runs (%.1f simulated cluster hours), %d candidates rejected by the memory guard\n",
		res.TotalRuns, res.Overhead.CollectClusterHours, res.GuardRejections)
	return of.emit(reg)
}

// cmdTrain fits an HM model on a previously collected CSV and saves it —
// the collecting cost is paid once, the model is reused by `dac search`.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	in := fs.String("in", "", "training CSV from `dac collect` (required)")
	out := fs.String("out", "dac.model", "model output path")
	seed := fs.Int64("seed", 1, "random seed")
	of := addObsFlags(fs)
	pf := addProfFlags(fs)
	fs.Parse(args)
	stop, err := pf.start()
	if err != nil {
		return err
	}
	defer stop()
	if *in == "" {
		return fmt.Errorf("train: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	set, err := dataset.ReadCSV(f, conf.StandardSpace())
	if err != nil {
		return err
	}
	reg := of.registry()
	hmOpt := experiments.PaperBudget().HM
	hmOpt.Seed = *seed
	hmOpt.Obs = reg
	m, err := hm.Train(set.ToDataset(), hmOpt)
	if err != nil {
		return err
	}
	dst, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer dst.Close()
	if err := m.Save(dst); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trained on %d vectors (order %d, validation error %.1f%%); saved to %s\n",
		set.Len(), m.Order, m.ValErr*100, *out)
	return of.emit(reg)
}

// cmdImportance trains an HM model on a collected CSV and ranks the
// features by split gain — which knobs (and the dsize column) carry the
// predictive power.
func cmdImportance(args []string) error {
	fs := flag.NewFlagSet("importance", flag.ExitOnError)
	in := fs.String("in", "", "training CSV from `dac collect` (required)")
	top := fs.Int("top", 10, "features to show")
	seed := fs.Int64("seed", 1, "random seed")
	of := addObsFlags(fs)
	pf := addProfFlags(fs)
	fs.Parse(args)
	stop, err := pf.start()
	if err != nil {
		return err
	}
	defer stop()
	if *in == "" {
		return fmt.Errorf("importance: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	set, err := dataset.ReadCSV(f, conf.StandardSpace())
	if err != nil {
		return err
	}
	ds := set.ToDataset()
	reg := of.registry()
	hmOpt := experiments.PaperBudget().HM
	hmOpt.Seed = *seed
	hmOpt.Obs = reg
	m, err := hm.Train(ds, hmOpt)
	if err != nil {
		return err
	}
	type row struct {
		name  string
		share float64
	}
	imp := m.FeatureImportance()
	rows := make([]row, len(imp))
	for i, v := range imp {
		rows[i] = row{ds.Names[i], v}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].share > rows[j].share })
	if *top > 0 && *top < len(rows) {
		rows = rows[:*top]
	}
	for i, r := range rows {
		fmt.Printf("%2d. %-45s %5.1f%%\n", i+1, r.name, r.share*100)
	}
	return of.emit(reg)
}

// cmdSearch loads a saved model and runs the GA for one target size —
// milliseconds of work against a model that took hours of cluster time to
// earn.
func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	modelPath := fs.String("model", "", "model from `dac train` (required)")
	abbr := fs.String("workload", "TS", "workload abbreviation (for datasize units)")
	size := fs.Float64("size", 0, "target datasize in workload units")
	out := fs.String("out", "", "write the configuration as a properties file")
	seed := fs.Int64("seed", 1, "random seed")
	searcherName := fs.String("searcher", "ga", "configuration searcher (ga|tpe|random|rrs|pattern|anneal)")
	of := addObsFlags(fs)
	pf := addProfFlags(fs)
	fs.Parse(args)
	stop, err := pf.start()
	if err != nil {
		return err
	}
	defer stop()
	if *modelPath == "" {
		return fmt.Errorf("search: -model is required")
	}
	w, err := lookupWorkload(*abbr)
	if err != nil {
		return err
	}
	units := *size
	if units == 0 {
		units = w.Sizes[len(w.Sizes)/2]
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	m, err := hm.Load(f)
	f.Close()
	if err != nil {
		return err
	}
	reg := of.registry()
	t := newTuner(w, 1, *seed, reg) // executor unused by Search
	if err := selectSearcher(t, *searcherName, reg); err != nil {
		return err
	}
	cfg, pred, gaRes, _, err := t.Search(m, w.InputMB(units), nil)
	if err != nil {
		return err
	}
	fmt.Printf("predicted %.1fs after %d GA evaluations (converged at iteration %d)\n",
		pred, gaRes.Evaluations, gaRes.Converged)
	if *out != "" {
		dst, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer dst.Close()
		if err := cfg.WriteProperties(dst); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		return of.emit(reg)
	}
	fmt.Println(cfg)
	return of.emit(reg)
}

// cmdCompare tunes with both DAC and RFHOC and prints the four-way
// comparison (default / expert / RFHOC / DAC) across the workload's five
// Table 1 sizes — one workload's slice of the paper's Fig. 12.
func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	abbr := fs.String("workload", "TS", "workload abbreviation")
	ntrain := fs.Int("ntrain", 2000, "training vectors to collect")
	seed := fs.Int64("seed", 1, "random seed")
	of := addObsFlags(fs)
	pf := addProfFlags(fs)
	fs.Parse(args)
	stop, err := pf.start()
	if err != nil {
		return err
	}
	defer stop()

	w, err := lookupWorkload(*abbr)
	if err != nil {
		return err
	}
	reg := of.registry()
	t := newTuner(w, *ntrain, *seed, reg)
	targets := w.SizesMB()
	lo, hi := targets[0]*0.8, targets[len(targets)-1]*1.1

	fmt.Printf("tuning %s (DAC per size + RFHOC)...\n", w.Name)
	res, err := t.Tune(lo, hi, targets)
	if err != nil {
		return err
	}
	rfhoc := &core.RFHOCTuner{Space: t.Space, Exec: t.Exec, Opt: t.Opt, Obs: reg}
	rfhocCfg, err := rfhoc.Tune(lo, hi)
	if err != nil {
		return err
	}

	evalSim := sparksim.New(cluster.Standard(), 99)
	space := conf.StandardSpace()
	expCfg := expert.Config(space, cluster.Standard())
	defCfg := space.Default()
	fmt.Printf("\n%-4s %12s %12s %12s %12s\n", "size", "default(s)", "expert(s)", "RFHOC(s)", "DAC(s)")
	for i, mb := range targets {
		fmt.Printf("D%-3d %12.1f %12.1f %12.1f %12.1f\n", i+1,
			evalSim.Run(&w.Program, mb, defCfg).TotalSec,
			evalSim.Run(&w.Program, mb, expCfg).TotalSec,
			evalSim.Run(&w.Program, mb, rfhocCfg).TotalSec,
			evalSim.Run(&w.Program, mb, res.Best[mb]).TotalSec)
	}
	return of.emit(reg)
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	abbr := fs.String("workload", "", "workload abbreviation (empty = all)")
	fs.Parse(args)

	show := func(w *workloads.Workload) {
		fmt.Printf("%s (%s): input unit %s, Table 1 sizes %v\n", w.Name, w.Abbr, w.Unit, w.Sizes)
		for _, st := range w.Program.Stages {
			times := st.Times()
			fmt.Printf("  stage %-16s x%d  cpu=%.3fs/MB shuffleOut=%.2f memx=%.1f\n",
				st.Name, times, st.CPUSecPerMB, st.ShuffleFrac, st.MemExpansion)
		}
	}
	if *abbr == "" {
		for _, w := range workloads.All() {
			show(w)
		}
		return nil
	}
	w, err := lookupWorkload(*abbr)
	if err != nil {
		return err
	}
	show(w)
	return nil
}
