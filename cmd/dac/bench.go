package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/backends"
	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/ga"
	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/rf"
	"repro/internal/sparksim"
	"repro/internal/tree"
	"repro/internal/workloads"
)

// benchResult is one serial-versus-optimized measurement pair.
type benchResult struct {
	Name       string  `json:"name"`
	SerialNs   int64   `json:"serial_ns_per_op"`
	ParallelNs int64   `json:"parallel_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// benchEnv is the wall-clock context a benchmark ran under, shared by
// the BENCH_model.json and BENCH_serve.json schemas. Speedups are only
// comparable between runs whose env matches: the hm_fit and rf_fit
// pairs parallelize across cores, so on a single-core runner their
// speedup reflects only the batched-update wins, while ga_search,
// predict_batch and tree_grow gain from cache locality and algorithmic
// cuts regardless of core count.
type benchEnv struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	GoVersion  string `json:"go_version"`
}

// currentBenchEnv snapshots the running process's environment.
func currentBenchEnv() benchEnv {
	return benchEnv{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
}

// benchReport is the BENCH_model.json schema.
type benchReport struct {
	benchEnv
	Quick bool `json:"quick"`
	// Model is the backend the predict_batch and ga_search pairs query
	// (-model flag; default hm).
	Model   string        `json:"model"`
	Results []benchResult `json:"results"`
}

// benchDataset builds the synthetic regression problem the benchmarks
// train on: d mixed-scale features, a smooth trend, one interaction, and
// a cliff — enough structure that trees keep splitting.
func benchDataset(n, d int, seed int64) *model.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := model.NewDataset(nil)
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64() * float64(10+j%7)
		}
		t := 10 + 5*x[0] + x[1]*x[2] + 2*x[d/2]
		if x[0] > 7 {
			t += 25
		}
		ds.Add(x, t*(1+0.02*rng.NormFloat64()))
	}
	return ds
}

// benchSpaceModel trains the model the predict and GA benchmarks query,
// over the standard configuration space. The hm default keeps its
// convergence knobs; other backends train through the registry with
// their own defaults.
func benchSpaceModel(backendName string, trees int, window int, quick bool) (model.Model, error) {
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(1))
	ds := model.NewDataset(nil)
	for i := 0; i < 1200; i++ {
		x := space.Random(rng).Vector()
		t := 20 + 3*x[0] + x[1]*0.5
		for _, v := range x {
			t += 0.01 * v
		}
		ds.Add(x, t*(1+0.05*rng.NormFloat64()))
	}
	if backendName == "hm" {
		return hm.Train(ds, hm.Options{Trees: trees, LearningRate: 0.05, TreeComplexity: 5,
			TargetAccuracy: 0.999, ConvergeWindow: window, Seed: 1})
	}
	b, err := backends.Default().Lookup(backendName)
	if err != nil {
		return nil, err
	}
	return b.Train(ds, model.TrainOpts{Seed: 1, Quick: quick})
}

// benchRounds is how many interleaved rounds runPair measures per side.
// Each side reports its best round: the minimum is the standard
// estimator for noisy shared boxes, where one slow round (GC, a
// neighbor stealing the core) would otherwise flip a small real speedup
// into an apparent regression. Interleaving (s,p,s,p,...) keeps slow
// phases of the machine from landing entirely on one side.
const benchRounds = 3

// runPair benchmarks the serial reference against the optimized path.
func runPair(name string, serial, parallel func(b *testing.B)) benchResult {
	best := func(r, prev int64) int64 {
		if prev == 0 || r < prev {
			return r
		}
		return prev
	}
	var sNs, pNs int64
	for r := 0; r < benchRounds; r++ {
		sNs = best(testing.Benchmark(serial).NsPerOp(), sNs)
		pNs = best(testing.Benchmark(parallel).NsPerOp(), pNs)
	}
	res := benchResult{Name: name, SerialNs: sNs, ParallelNs: pNs}
	if res.ParallelNs > 0 {
		res.Speedup = float64(res.SerialNs) / float64(res.ParallelNs)
	}
	fmt.Printf("%-14s serial %12d ns/op   optimized %12d ns/op   speedup %.2fx\n",
		res.Name, res.SerialNs, res.ParallelNs, res.Speedup)
	return res
}

// cmdBench measures the serial reference paths against the batched,
// parallel pipeline — the same pairs the package benchmarks cover
// (BenchmarkHMFit, BenchmarkPredictBatch, BenchmarkGASearch,
// BenchmarkTrainParallel) — and optionally writes BENCH_model.json.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	jsonPath := fs.String("json", "", "write results as JSON (e.g. BENCH_model.json)")
	quick := fs.Bool("quick", false, "small problem sizes (CI smoke run)")
	backendName := fs.String("model", "hm", "model backend the predict/search pairs query (hm|rf|rs|ann|svm)")
	serveBench := fs.Bool("serve", false, "benchmark the serving path instead: hot cache vs Load-per-request")
	serveClients := fs.Int("serve-clients", 8, "concurrent HTTP clients for -serve")
	serveDuration := fs.Duration("serve-duration", 3*time.Second, "load duration per side for -serve")
	serveVectors := fs.Int("serve-vectors", 64, "distinct request vectors in the -serve pool")
	pf := addProfFlags(fs)
	fs.Parse(args)
	stop, err := pf.start()
	if err != nil {
		return err
	}
	defer stop()

	if *serveBench {
		return benchServe(*jsonPath, *quick, *serveClients, *serveVectors, *serveDuration, *backendName)
	}

	// Full sizes mirror the paper's budgets (nt=3600 models, popSize 100 ×
	// 100 generations); -quick shrinks everything to CI scale.
	hmTrees, modelTrees, modelWindow := 600, 3600, 4000
	popSize, generations, rfTrees, probeRows := 100, 100, 100, 512
	nSpecs := 600
	if *quick {
		hmTrees, modelTrees, modelWindow = 80, 240, 600
		popSize, generations, rfTrees, probeRows = 40, 15, 30, 128
		nSpecs = 150
	}

	rep := benchReport{
		benchEnv: currentBenchEnv(),
		Quick:    *quick,
		Model:    *backendName,
	}
	fmt.Printf("GOMAXPROCS=%d numcpu=%d %s quick=%v model=%s\n",
		rep.GOMAXPROCS, rep.NumCPU, rep.GoVersion, *quick, rep.Model)

	hmDS := benchDataset(2000, 42, 1)
	hmOpt := hm.Options{Trees: hmTrees, LearningRate: 0.05, TreeComplexity: 5,
		Seed: 1, TargetAccuracy: 0.999}
	rep.Results = append(rep.Results, runPair("hm_fit",
		func(b *testing.B) {
			opt := hmOpt
			opt.Workers = 1
			opt.NoBatch = true
			for i := 0; i < b.N; i++ {
				if _, err := hm.Train(hmDS, opt); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hm.Train(hmDS, hmOpt); err != nil {
					b.Fatal(err)
				}
			}
		}))

	// tree_grow pairs the exact per-node histogram scan against the
	// sibling-subtraction fast path on the same single-tree workload as
	// BenchmarkGrowTC5: one boosting sub-model (tc=5) over the hm_fit
	// design matrix. This is the inner loop hm executes nt times, so its
	// speedup compounds directly into hm_fit.
	treeBuilder := tree.NewBuilder(hmDS.Features)
	treeIdx := make([]int, hmDS.Len())
	for i := range treeIdx {
		treeIdx[i] = i
	}
	rep.Results = append(rep.Results, runPair("tree_grow",
		func(b *testing.B) {
			opt := tree.Options{MaxSplits: 5, ExactHistograms: true}
			for i := 0; i < b.N; i++ {
				treeBuilder.Grow(hmDS.Targets, treeIdx, opt, nil)
			}
		},
		func(b *testing.B) {
			opt := tree.Options{MaxSplits: 5}
			for i := 0; i < b.N; i++ {
				treeBuilder.Grow(hmDS.Targets, treeIdx, opt, nil)
			}
		}))

	m, err := benchSpaceModel(*backendName, modelTrees, modelWindow, *quick)
	if err != nil {
		return err
	}
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(2))
	rows := make([][]float64, probeRows)
	for i := range rows {
		rows[i] = space.Random(rng).Vector()
	}
	out := make([]float64, len(rows))
	rep.Results = append(rep.Results, runPair("predict_batch",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j, x := range rows {
					out[j] = m.Predict(x)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				model.PredictBatch(m, rows, out)
			}
		}))

	gaOpt := ga.Options{PopSize: popSize, Generations: generations, Seed: 1}
	rep.Results = append(rep.Results, runPair("ga_search",
		func(b *testing.B) {
			opt := gaOpt
			opt.Workers = 1
			opt.NoCache = true
			for i := 0; i < b.N; i++ {
				ga.Minimize(space, m.Predict, nil, opt)
			}
		},
		func(b *testing.B) {
			opt := gaOpt
			opt.BatchObj = func(X [][]float64, fit []float64) { model.PredictBatch(m, X, fit) }
			for i := 0; i < b.N; i++ {
				ga.Minimize(space, m.Predict, nil, opt)
			}
		}))

	rfDS := benchDataset(1000, 12, 3)
	rep.Results = append(rep.Results, runPair("rf_fit",
		func(b *testing.B) {
			// The serial reference also runs the exact histogram scan, so
			// the pair captures both the parallel-fit and fast-tree wins.
			for i := 0; i < b.N; i++ {
				if _, err := rf.Train(rfDS, rf.Options{Trees: rfTrees, Seed: 1, Workers: 1, ExactHistograms: true}); err != nil {
					b.Fatal(err)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rf.Train(rfDS, rf.Options{Trees: rfTrees, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}))

	w, err := workloads.ByAbbr("WC")
	if err != nil {
		return err
	}
	sim := sparksim.New(cluster.Standard(), 1)
	specs := make([]sparksim.RunSpec, nSpecs)
	specRng := rand.New(rand.NewSource(4))
	for i := range specs {
		specs[i] = sparksim.RunSpec{
			Cfg:     space.Random(specRng),
			InputMB: 512 + 4096*specRng.Float64(),
		}
	}
	rep.Results = append(rep.Results, runPair("collect_batch",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, s := range specs {
					sim.Run(&w.Program, s.InputMB, s.Cfg)
				}
			}
		},
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim.RunBatch(&w.Program, specs)
			}
		}))

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
	return nil
}
