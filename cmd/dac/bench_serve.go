package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/conf"
	"repro/internal/obs"
	"repro/internal/serve"
)

// serveSideReport is one side of the hot-versus-baseline serving pair:
// aggregate client-side load numbers plus (for the hot side) the
// daemon's own cache and coalescing counters.
type serveSideReport struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	QPS      float64 `json:"qps"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
	MaxUs    float64 `json:"max_us"`

	CacheHits int64   `json:"cache_hits,omitempty"`
	CacheMiss int64   `json:"cache_misses,omitempty"`
	MemoHits  int64   `json:"memo_hits,omitempty"`
	MemoMiss  int64   `json:"memo_misses,omitempty"`
	Batches   int64   `json:"batches,omitempty"`
	MeanBatch float64 `json:"mean_batch,omitempty"`
	MaxBatch  float64 `json:"max_batch,omitempty"`
	HitRate   float64 `json:"cache_hit_rate,omitempty"`
	MemoRate  float64 `json:"memo_hit_rate,omitempty"`
}

// serveBenchReport is the BENCH_serve.json schema: the same load driven
// against the hot serving path (pinned models, memo, coalesced batches)
// and against the original Load-per-request baseline, from the same
// number of concurrent HTTP clients.
type serveBenchReport struct {
	benchEnv
	Quick       bool    `json:"quick"`
	Clients     int     `json:"clients"`
	DurationSec float64 `json:"duration_sec"`
	VectorPool  int     `json:"vector_pool"`
	ModelTrees  int     `json:"model_trees"`

	Hot      serveSideReport `json:"hot"`
	Baseline serveSideReport `json:"baseline"`
	// Speedup is hot QPS over baseline QPS at the same client count.
	Speedup float64 `json:"speedup"`
}

// quantileUs picks the q-quantile (nearest-rank) from sorted seconds,
// in microseconds.
func quantileUs(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i] * 1e6
}

// driveServe hammers url with clients concurrent posters for duration,
// each drawing round-robin from its own offset into the request pool
// (so the pool repeats and the memo sees hits), and aggregates
// client-side latencies.
func driveServe(url string, bodies [][]byte, clients int, duration time.Duration) (serveSideReport, error) {
	tr := &http.Transport{MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats []float64
		rep  serveSideReport
	)
	deadline := time.Now().Add(duration)
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var mine []float64
			var errs int64
			for i := c; time.Now().Before(deadline); i++ {
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				var out struct {
					PredictedSec float64 `json:"predicted_sec"`
					Error        string  `json:"error"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errs++
					continue
				}
				mine = append(mine, time.Since(t0).Seconds())
			}
			mu.Lock()
			lats = append(lats, mine...)
			rep.Errors += errs
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return rep, err
	}
	sort.Float64s(lats)
	rep.Requests = int64(len(lats))
	rep.QPS = float64(len(lats)) / duration.Seconds()
	rep.P50Us = quantileUs(lats, 0.50)
	rep.P99Us = quantileUs(lats, 0.99)
	rep.MaxUs = quantileUs(lats, 1)
	return rep, nil
}

// benchServe measures the serving tentpole: the hot path (model cache +
// memo + coalescer) against a second daemon running the pre-cache
// Load-per-request path, same model, same request pool, same client
// count. Results land on stdout and optionally in BENCH_serve.json.
func benchServe(jsonPath string, quick bool, clients, vectors int, duration time.Duration, backendName string) error {
	modelTrees, modelWindow := 3600, 4000
	if quick {
		modelTrees, modelWindow = 240, 600
	}
	rep := serveBenchReport{
		benchEnv:    currentBenchEnv(),
		Quick:       quick,
		Clients:     clients,
		DurationSec: duration.Seconds(),
		VectorPool:  vectors,
		ModelTrees:  modelTrees,
	}
	fmt.Printf("GOMAXPROCS=%d numcpu=%d %s quick=%v clients=%d duration=%s model=%s\n",
		rep.GOMAXPROCS, rep.NumCPU, rep.GoVersion, quick, clients, duration, backendName)

	m, err := benchSpaceModel(backendName, modelTrees, modelWindow, quick)
	if err != nil {
		return err
	}

	// The request pool: -serve-vectors distinct configurations, so a few
	// seconds of load revisits each vector many times (memo hits) while
	// still exercising misses on the first pass.
	space := conf.StandardSpace()
	rng := rand.New(rand.NewSource(7))
	bodies := make([][]byte, vectors)
	for i := range bodies {
		b, err := json.Marshal(map[string]any{
			"vector":   space.Random(rng).Vector(),
			"dsize_mb": 128 + 4096*rng.Float64(),
		})
		if err != nil {
			return err
		}
		bodies[i] = b
	}

	// Two daemons over separate data directories: serving enabled
	// (default options) and serving disabled — the disabled side is
	// exactly the pre-cache predict path, decoding the registry snapshot
	// on every request.
	run := func(label string, opt serve.ServingOptions) (serveSideReport, *obs.Registry, error) {
		dir, err := os.MkdirTemp("", "dac-bench-serve-*")
		if err != nil {
			return serveSideReport{}, nil, err
		}
		defer os.RemoveAll(dir)
		reg := obs.NewRegistry()
		s, err := serve.NewServerOpts(dir, serve.ServerOptions{Workers: 1, Obs: reg, Serving: opt})
		if err != nil {
			return serveSideReport{}, nil, err
		}
		defer s.Close()
		if _, err := s.Manager().Models().Save("bench", m, serve.ModelMeta{Backend: backendName}); err != nil {
			return serveSideReport{}, nil, err
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		side, err := driveServe(ts.URL+"/models/bench/predict", bodies, clients, duration)
		if err != nil {
			return side, nil, fmt.Errorf("%s: %w", label, err)
		}
		fmt.Printf("%-9s %8d req  %10.0f qps   p50 %8.1fµs   p99 %8.1fµs   errors %d\n",
			label, side.Requests, side.QPS, side.P50Us, side.P99Us, side.Errors)
		return side, reg, nil
	}

	hot, hotReg, err := run("hot", serve.ServingOptions{})
	if err != nil {
		return err
	}
	hot.CacheHits = hotReg.Counter("serve.modelcache.hits").Value()
	hot.CacheMiss = hotReg.Counter("serve.modelcache.misses").Value()
	hot.MemoHits = hotReg.Counter("serve.predict.memo.hits").Value()
	hot.MemoMiss = hotReg.Counter("serve.predict.memo.misses").Value()
	hot.Batches = hotReg.Counter("serve.predict.batches").Value()
	bs := hotReg.Histogram("serve.predict.batch_size", nil)
	hot.MeanBatch = bs.Mean()
	hot.MaxBatch = bs.Max()
	if total := hot.CacheHits + hot.CacheMiss; total > 0 {
		hot.HitRate = float64(hot.CacheHits) / float64(total)
	}
	if total := hot.MemoHits + hot.MemoMiss; total > 0 {
		hot.MemoRate = float64(hot.MemoHits) / float64(total)
	}
	fmt.Printf("          cache hit rate %.4f   memo hit rate %.4f   %d batches (mean %.1f, max %.0f rows)\n",
		hot.HitRate, hot.MemoRate, hot.Batches, hot.MeanBatch, hot.MaxBatch)

	base, _, err := run("baseline", serve.ServingOptions{Disabled: true})
	if err != nil {
		return err
	}
	rep.Hot, rep.Baseline = hot, base
	if base.QPS > 0 {
		rep.Speedup = hot.QPS / base.QPS
	}
	fmt.Printf("serve speedup %.1fx (%0.f qps hot vs %.0f qps Load-per-request, %d clients)\n",
		rep.Speedup, hot.QPS, base.QPS, clients)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}
	return nil
}
