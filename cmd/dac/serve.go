package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// cmdServe runs dacd, the long-lived tuning daemon: an HTTP JSON API
// over the pipeline with durable, resumable jobs and a versioned model
// registry (see DESIGN.md §10). The bound address is printed to stdout
// and written to <data>/addr so scripts can use -addr :0 (a random free
// port) without parsing logs. SIGINT/SIGTERM shut down gracefully:
// in-flight collect rows stay journaled and unfinished jobs are adopted
// by the next daemon started over the same data directory.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "listen address (use :0 for a random free port)")
	data := fs.String("data", "dacd-data", "data directory (journals, jobs, collected CSVs, model registry)")
	workers := fs.Int("workers", 2, "concurrent tuning jobs")
	coalesceWindow := fs.Duration("coalesce-window", 0, "predict micro-batch gather window (0 = default 200µs, negative = flush immediately)")
	keepVersions := fs.Int("keep-versions", 0, "old model versions kept hot beside the latest (0 = default 4, negative = none)")
	noHotPath := fs.Bool("no-hot-path", false, "disable the serving cache: decode the model from disk on every predict")
	memoCap := fs.Int("memo-cap", 0, "max memoized prediction vectors per hot model version (0 = default 262144, negative = unbounded)")
	fs.Parse(args)

	reg := obs.NewRegistry()
	s, err := serve.NewServerOpts(*data, serve.ServerOptions{
		Workers: *workers,
		Obs:     reg,
		Serving: serve.ServingOptions{
			Disabled:        *noHotPath,
			CoalesceWindow:  *coalesceWindow,
			KeepOldVersions: *keepVersions,
			MemoCap:         *memoCap,
		},
	})
	if err != nil {
		return err
	}
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if err := os.WriteFile(filepath.Join(*data, "addr"), []byte(bound+"\n"), 0o644); err != nil {
		return err
	}
	fmt.Printf("dacd listening on %s (data: %s, %d workers)\n", bound, *data, *workers)

	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "dacd: %v, shutting down\n", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
