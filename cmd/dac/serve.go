package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// cmdServe runs dacd, the long-lived tuning daemon: an HTTP JSON API
// over the pipeline with durable, resumable jobs and a versioned model
// registry (see DESIGN.md §10). The bound address is printed to stdout
// and written to <data>/addr so scripts can use -addr :0 (a random free
// port) without parsing logs. SIGINT/SIGTERM shut down gracefully:
// in-flight collect rows stay journaled and unfinished jobs are adopted
// by the next daemon started over the same data directory.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7411", "listen address (use :0 for a random free port)")
	data := fs.String("data", "dacd-data", "data directory (journals, jobs, collected CSVs, model registry)")
	workers := fs.Int("workers", 2, "concurrent tuning jobs (min 1)")
	coalesceWindow := fs.Duration("coalesce-window", 200*time.Microsecond, "predict micro-batch gather window (must be positive)")
	keepVersions := fs.Int("keep-versions", 4, "old model versions kept hot beside the latest (0 = keep none)")
	noHotPath := fs.Bool("no-hot-path", false, "disable the serving cache: decode the model from disk on every predict")
	memoCap := fs.Int("memo-cap", 262144, "max memoized prediction vectors per hot model version (must be positive)")
	coordinator := fs.Bool("coordinator", false, "enable the fleet coordinator: collect sweeps shard across `dac worker` agents when any are live (DESIGN.md §15)")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "fleet: lease/liveness horizon past a worker's last heartbeat")
	chunkRows := fs.Int("chunk-rows", 64, "fleet: sweep rows per leased chunk")
	authToken := fs.String("auth-token", os.Getenv("DAC_TOKEN"), "shared secret required on mutating endpoints; empty runs open (default $DAC_TOKEN)")
	rateLimit := fs.Float64("rate-limit", 0, "max mutating requests/sec per bearer token, 429 past the burst (0 = unlimited)")
	gcKeepVersions := fs.Int("gc-keep-versions", 0, "prune each registry model to its newest N versions, on startup and after every registration (0 = keep all)")
	fs.Parse(args)

	// Flag values are validated loudly at startup: a zero/negative window
	// would silently disable micro-batching, a negative memo cap would
	// memoize without bound, and zero workers would accept jobs that never
	// run. Every flag states its real default; there are no sentinels.
	if *workers < 1 {
		return fmt.Errorf("serve: -workers must be at least 1, got %d", *workers)
	}
	if *coalesceWindow <= 0 {
		return fmt.Errorf("serve: -coalesce-window must be positive, got %v", *coalesceWindow)
	}
	if *memoCap < 1 {
		return fmt.Errorf("serve: -memo-cap must be positive, got %d", *memoCap)
	}
	if *keepVersions < 0 {
		return fmt.Errorf("serve: -keep-versions must not be negative, got %d", *keepVersions)
	}
	if *leaseTTL <= 0 {
		return fmt.Errorf("serve: -lease-ttl must be positive, got %v", *leaseTTL)
	}
	if *chunkRows < 1 {
		return fmt.Errorf("serve: -chunk-rows must be at least 1, got %d", *chunkRows)
	}
	if *gcKeepVersions < 0 {
		return fmt.Errorf("serve: -gc-keep-versions must not be negative, got %d", *gcKeepVersions)
	}
	if *rateLimit < 0 {
		return fmt.Errorf("serve: -rate-limit must not be negative, got %g", *rateLimit)
	}
	keep := *keepVersions
	if keep == 0 {
		keep = -1 // the library's "keep none"; 0 would select its default
	}

	reg := obs.NewRegistry()
	s, err := serve.NewServerOpts(*data, serve.ServerOptions{
		Workers: *workers,
		Obs:     reg,
		Serving: serve.ServingOptions{
			Disabled:        *noHotPath,
			CoalesceWindow:  *coalesceWindow,
			KeepOldVersions: keep,
			MemoCap:         *memoCap,
		},
		Fleet: serve.FleetOptions{
			Enabled:   *coordinator,
			LeaseTTL:  *leaseTTL,
			ChunkRows: *chunkRows,
		},
		AuthToken:      *authToken,
		GCKeepVersions: *gcKeepVersions,
		RateLimit:      *rateLimit,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if err := os.WriteFile(filepath.Join(*data, "addr"), []byte(bound+"\n"), 0o644); err != nil {
		return err
	}
	mode := ""
	if *coordinator {
		mode = ", fleet coordinator on"
	}
	if *authToken != "" {
		mode += ", auth required"
	}
	fmt.Printf("dacd listening on %s (data: %s, %d workers%s)\n", bound, *data, *workers, mode)

	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "dacd: %v, shutting down\n", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
