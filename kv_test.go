package dac_test

import (
	"testing"

	dac "repro"
)

func TestKVSpaceShape(t *testing.T) {
	s := dac.KVSpace()
	if s.Len() != 16 {
		t.Fatalf("KV space has %d params, want 16", s.Len())
	}
}

func TestKVSimulatorThroughFacade(t *testing.T) {
	sim := dac.NewKVSimulator(1)
	cfg := dac.KVSpace().Default()
	for _, w := range []dac.KVWorkload{dac.KVReadHeavy(), dac.KVWriteHeavy(), dac.KVScanHeavy()} {
		if v := sim.Run(w, 50*1024, cfg); v <= 0 {
			t.Errorf("%s: time %v", w.Name, v)
		}
	}
}

// TestKVTunerEndToEnd exercises the paper's generality claim: the same
// pipeline tunes the key-value store and beats its defaults.
func TestKVTunerEndToEnd(t *testing.T) {
	w := dac.KVReadHeavy()
	tuner := dac.NewKVTuner(w, dac.Options{
		NTrain: 400,
		HM:     dac.HMOptions{Trees: 200, LearningRate: 0.1, TreeComplexity: 5},
		GA:     dac.GAOptions{PopSize: 30, Generations: 20},
		Seed:   1,
	})
	target := 20.0 * 1024
	res, err := tuner.Tune(10*1024, 100*1024, []float64{target})
	if err != nil {
		t.Fatal(err)
	}
	sim := dac.NewKVSimulator(55)
	tTuned := sim.Run(w, target, res.Best[target])
	tDef := sim.Run(w, target, dac.KVSpace().Default())
	if tTuned >= tDef {
		t.Fatalf("tuned KV config (%.0fs) not faster than default (%.0fs)", tTuned, tDef)
	}
}
