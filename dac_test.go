package dac_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	dac "repro"
)

func TestPublicSurfaceBasics(t *testing.T) {
	space := dac.StandardSpace()
	if space.Len() != 41 {
		t.Fatalf("standard space has %d params, want 41", space.Len())
	}
	cl := dac.StandardCluster()
	if cl.TotalCores() != 360 {
		t.Fatalf("worker cores = %d, want 360 (5 x 72)", cl.TotalCores())
	}
	if got := len(dac.Workloads()); got != 6 {
		t.Fatalf("workloads = %d, want 6", got)
	}
	if _, err := dac.WorkloadByAbbr("XX"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestSimulateThroughPublicAPI(t *testing.T) {
	w, err := dac.WorkloadByAbbr("WC")
	if err != nil {
		t.Fatal(err)
	}
	sim := dac.NewSimulator(dac.StandardCluster(), 1)
	res := sim.Run(&w.Program, w.InputMB(80), dac.DefaultConfig())
	if res.TotalSec <= 0 {
		t.Fatalf("TotalSec = %v", res.TotalSec)
	}
	if res.Stage("map") == nil {
		t.Error("stage lookup through facade failed")
	}
}

func TestExpertConfigThroughFacade(t *testing.T) {
	space := dac.StandardSpace()
	cfg := dac.ExpertConfig(space, dac.StandardCluster())
	if cfg.GetEnum("spark.serializer") != "kryo" {
		t.Error("expert config should pick kryo")
	}
}

func TestTunerEndToEndThroughFacade(t *testing.T) {
	w, err := dac.WorkloadByAbbr("TS")
	if err != nil {
		t.Fatal(err)
	}
	tuner := dac.NewTuner(w, dac.StandardCluster(), dac.Options{
		NTrain: 250,
		HM:     dac.HMOptions{Trees: 150, LearningRate: 0.1, TreeComplexity: 5},
		GA:     dac.GAOptions{PopSize: 25, Generations: 15},
		Seed:   1,
	})
	target := w.InputMB(30)
	res, err := tuner.Tune(w.InputMB(10), w.InputMB(50), []float64{target})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best[target]
	sim := dac.NewSimulator(dac.StandardCluster(), 55)
	tDAC := sim.Run(&w.Program, target, best).TotalSec
	tDef := sim.Run(&w.Program, target, dac.DefaultConfig()).TotalSec
	if tDAC >= tDef {
		t.Fatalf("tuned config (%.1fs) not faster than default (%.1fs)", tDAC, tDef)
	}
}

func TestRFHOCTunerThroughFacade(t *testing.T) {
	w, err := dac.WorkloadByAbbr("WC")
	if err != nil {
		t.Fatal(err)
	}
	tuner := dac.NewRFHOCTuner(w, dac.StandardCluster(), dac.Options{
		NTrain: 150,
		GA:     dac.GAOptions{PopSize: 15, Generations: 8},
		Seed:   3,
	})
	cfg, err := tuner.Tune(w.InputMB(80), w.InputMB(160))
	if err != nil {
		t.Fatal(err)
	}
	space := dac.StandardSpace()
	for i := 0; i < space.Len(); i++ {
		p := space.Param(i)
		if v := cfg.At(i); v < p.Min || v > p.Max {
			t.Fatalf("%s out of range", p.Name)
		}
	}
}

func TestSubSpaceThroughFacade(t *testing.T) {
	space := dac.StandardSpace()
	ss, err := dac.NewSubSpace(space, space.Default(), []string{"spark.executor.memory"})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Tunable.Len() != 1 {
		t.Fatalf("tunable len %d", ss.Tunable.Len())
	}
	cfg, err := ss.ExpandVector([]float64{8192})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.GetInt("spark.executor.memory") != 8192 {
		t.Error("expansion lost the tuned value")
	}
}

func TestSamplersThroughFacade(t *testing.T) {
	space := dac.StandardSpace()
	rng := rand.New(rand.NewSource(1))
	var s dac.Sampler = dac.LatinHypercubeSampler{}
	cfgs := s.Sample(space, 10, rng)
	if len(cfgs) != 10 {
		t.Fatalf("got %d configs", len(cfgs))
	}
}

func TestTrainersThroughFacade(t *testing.T) {
	trainers := dac.Trainers()
	if len(trainers) != 5 {
		t.Fatalf("got %d trainers", len(trainers))
	}
	want := []string{"RS", "ANN", "SVM", "RF", "HM"}
	for i, tr := range trainers {
		if tr.Name() != want[i] {
			t.Errorf("trainer %d = %s, want %s", i, tr.Name(), want[i])
		}
	}
}

func TestPerfSetCSVThroughFacade(t *testing.T) {
	space := dac.StandardSpace()
	set := dac.NewPerfSet(space)
	set.Add(space.Default(), 1024, 33)
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "t,spark.") {
		t.Errorf("unexpected CSV header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestSearchersThroughFacade(t *testing.T) {
	space := dac.StandardSpace()
	obj := func(x []float64) float64 { return x[0] }
	if res := dac.RandomSearch(space, obj, 20, 1); res.Evaluations != 20 {
		t.Error("random search budget not honored")
	}
	if res := dac.RecursiveRandomSearch(space, obj, 20, 1); res.Best == nil {
		t.Error("RRS returned no best")
	}
	if res := dac.PatternSearch(space, obj, 20, 1); res.Best == nil {
		t.Error("pattern search returned no best")
	}
	if res := dac.GAMinimize(space, obj, nil, dac.GAOptions{PopSize: 10, Generations: 3}); res.Best == nil {
		t.Error("GA returned no best")
	}
}

func TestHadoopSideThroughFacade(t *testing.T) {
	hs := dac.HadoopSpace()
	if hs.Len() != 10 {
		t.Fatalf("hadoop space has %d params", hs.Len())
	}
	sim := dac.NewHadoopSimulator(dac.StandardCluster(), 1)
	if v := sim.Run(dac.HadoopKMeans(), 18*1024, hs.Default()); v <= 0 {
		t.Fatalf("hadoop run time %v", v)
	}
}
