package dac

import (
	"repro/internal/ann"
	"repro/internal/conf"
	"repro/internal/dataset"
	"repro/internal/ga"
	"repro/internal/hadoopsim"
	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/rf"
	"repro/internal/rs"
	"repro/internal/search"
	"repro/internal/svm"
)

// Modeling types.
type (
	// Dataset is a design matrix of performance vectors for training.
	Dataset = model.Dataset
	// ErrStats summarizes Eq. 2 prediction errors over a test set.
	ErrStats = model.ErrStats
	// PerfSet is the collecting component's output: performance vectors
	// with CSV persistence.
	PerfSet = dataset.Set
	// PerfVector is one observed execution (time, configuration, dsize).
	PerfVector = dataset.PerfVector
	// RFOptions are the random-forest hyperparameters.
	RFOptions = rf.Options
	// ANNOptions are the neural-network hyperparameters.
	ANNOptions = ann.Options
	// SVMOptions are the support-vector-regression hyperparameters.
	SVMOptions = svm.Options
	// RSOptions are the response-surface hyperparameters.
	RSOptions = rs.Options
)

// Hadoop (ODC) types for the motivation study.
type (
	// HadoopSimulator is the on-disk MapReduce-style simulator.
	HadoopSimulator = hadoopsim.Simulator
	// HadoopJob describes a MapReduce application.
	HadoopJob = hadoopsim.Job
)

// HadoopKMeans and HadoopPageRank return the ODC implementations of the
// §2.2.1 motivation programs.
func HadoopKMeans() HadoopJob   { return hadoopsim.KMeansJob() }
func HadoopPageRank() HadoopJob { return hadoopsim.PageRankJob() }

// NewHMTrainer returns the Hierarchical Modeling trainer — the paper's
// modeling technique. The zero Options select tc=5, lr=0.05, nt=3600.
func NewHMTrainer(opt HMOptions) Trainer { return hm.Trainer{Opt: opt} }

// NewRFTrainer returns the random-forest trainer (RFHOC's model).
func NewRFTrainer(opt RFOptions) Trainer { return rf.Trainer{Opt: opt} }

// NewANNTrainer returns the artificial-neural-network baseline trainer.
func NewANNTrainer(opt ANNOptions) Trainer { return ann.Trainer{Opt: opt} }

// NewSVMTrainer returns the support-vector-regression baseline trainer.
func NewSVMTrainer(opt SVMOptions) Trainer { return svm.Trainer{Opt: opt} }

// NewRSTrainer returns the response-surface baseline trainer.
func NewRSTrainer(opt RSOptions) Trainer { return rs.Trainer{Opt: opt} }

// Trainers returns the five modeling techniques the paper compares in
// Fig. 9, in its order: RS, ANN, SVM, RF, HM.
func Trainers() []Trainer {
	return []Trainer{
		rs.Trainer{}, ann.Trainer{}, svm.Trainer{}, rf.Trainer{}, hm.Trainer{},
	}
}

// Evaluate computes Eq. 2 error statistics of m over ds.
func Evaluate(m Model, ds *Dataset) ErrStats { return model.Evaluate(m, ds) }

// RelErr is Eq. 2: |t_pre - t_mea| / t_mea.
func RelErr(pred, meas float64) float64 { return model.RelErr(pred, meas) }

// NewPerfSet returns an empty performance-vector set over space.
func NewPerfSet(space *Space) *PerfSet { return dataset.NewSet(space) }

// Sampling strategies for the collecting component.
type (
	// Sampler generates the configurations the collector runs.
	Sampler = conf.Sampler
	// UniformSampler is the paper's configuration generator.
	UniformSampler = conf.UniformSampler
	// LatinHypercubeSampler is the space-filling alternative.
	LatinHypercubeSampler = conf.LatinHypercubeSampler
	// SubSpace restricts tuning to a subset of parameters.
	SubSpace = conf.SubSpace
)

// NewSubSpace builds a reduced tuning space over the named parameters of
// full, freezing the rest at base's values.
func NewSubSpace(full *Space, base Config, names []string) (*SubSpace, error) {
	return conf.NewSubSpace(full, base, names)
}

// Searchers beyond the GA (§3.3's rejected alternatives), exposed for
// ablation studies.
type (
	// SearchResult is a non-GA searcher's outcome.
	SearchResult = search.Result
	// SearchObjective maps an encoded configuration to the minimized value.
	SearchObjective = search.Objective
)

// GAMinimize runs the paper's genetic algorithm over space.
func GAMinimize(space *Space, obj SearchObjective, init [][]float64, opt GAOptions) GAResult {
	return ga.Minimize(space, ga.Objective(obj), init, opt)
}

// RandomSearch evaluates budget random configurations.
func RandomSearch(space *Space, obj SearchObjective, budget int, seed int64) SearchResult {
	return search.Random(space, obj, budget, seed)
}

// RecursiveRandomSearch runs recursive random search [56].
func RecursiveRandomSearch(space *Space, obj SearchObjective, budget int, seed int64) SearchResult {
	return search.RecursiveRandom(space, obj, budget, seed)
}

// PatternSearch runs coordinate pattern search [46].
func PatternSearch(space *Space, obj SearchObjective, budget int, seed int64) SearchResult {
	return search.Pattern(space, obj, budget, seed)
}

// AnnealSearch runs simulated annealing (an additional ablation searcher).
func AnnealSearch(space *Space, obj SearchObjective, budget int, seed int64) SearchResult {
	return search.Anneal(space, obj, budget, seed)
}

// The pluggable search layer (DESIGN.md §16): every searcher — the GA,
// the TPE Bayesian optimizer, and the ablations above — behind one
// interface and a name-keyed registry. Options.Searcher on the tuner
// routes the pipeline's search stage through any of them; nil keeps the
// paper's GA byte-identically.
type (
	// Searcher is the pluggable search-stage contract.
	Searcher = search.Searcher
	// SearcherOptions carries a Searcher.Search call's budget and wiring.
	SearcherOptions = search.Options
	// SearcherRegistry is an immutable name-keyed set of searchers.
	SearcherRegistry = search.Registry
)

// DefaultSearchers returns the registry of every built-in searcher
// ("ga", "tpe", "random", "rrs", "pattern", "anneal").
func DefaultSearchers() *SearcherRegistry { return search.Default() }

// TPESearch runs the from-scratch Tree-structured Parzen Estimator at
// the given candidate budget.
func TPESearch(space *Space, obj SearchObjective, budget int, seed int64) SearchResult {
	return (&search.TPE{}).Search(space, obj, search.Options{Budget: budget, Seed: seed})
}
