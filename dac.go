// Package dac is a from-scratch Go implementation of DAC — the
// datasize-aware, high dimensional configuration auto-tuner for in-memory
// cluster computing of Yu, Bei and Qian (ASPLOS'18) — together with every
// substrate the paper's evaluation needs: a mechanistic Spark-1.6-style
// cluster simulator, the six HiBench workloads, an on-disk MapReduce
// simulator, the Hierarchical Modeling learner, four baseline learners
// (response surface, neural network, SVR, random forest), a genetic
// algorithm plus alternative searchers, and the expert-rules baseline.
//
// The package is a facade: it re-exports the library's public surface
// from the internal implementation packages. The typical flow mirrors the
// paper's Fig. 4:
//
//	w, _ := dac.WorkloadByAbbr("TS")
//	tuner := dac.NewTuner(w, dac.StandardCluster(), dac.Options{})
//	res, _ := tuner.Tune(w.InputMB(10), w.InputMB(50), []float64{w.InputMB(30)})
//	best := res.Best[w.InputMB(30)]
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// paper-versus-reproduction comparison of every table and figure.
package dac

import (
	"repro/internal/cluster"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/expert"
	"repro/internal/ga"
	"repro/internal/hadoopsim"
	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/sparksim"
	"repro/internal/workloads"
)

// Core configuration-space and cluster types.
type (
	// Space is a set of tunable parameters; StandardSpace returns the 41
	// Spark parameters of the paper's Table 2.
	Space = conf.Space
	// Config is one point in a Space: an encoded value per parameter.
	Config = conf.Config
	// Param describes one tunable parameter.
	Param = conf.Param
	// Cluster describes the modelled hardware.
	Cluster = cluster.Cluster
)

// Workload and simulator types.
type (
	// Workload is one of the six HiBench programs with its Table 1 sizes.
	Workload = workloads.Workload
	// Program is a workload's stage DAG.
	Program = sparksim.Program
	// Stage is one Spark stage description.
	Stage = sparksim.Stage
	// Simulator executes Programs on a modelled cluster.
	Simulator = sparksim.Simulator
	// SimOptions selects simulator mechanisms (ablation switches).
	SimOptions = sparksim.Options
	// RunResult is a simulated execution's timing breakdown.
	RunResult = sparksim.Result
	// StageResult is the per-stage breakdown within a RunResult.
	StageResult = sparksim.StageResult
)

// Tuning pipeline types.
type (
	// Tuner is the DAC pipeline (collect, model, search) for one program.
	Tuner = core.Tuner
	// RFHOCTuner is the datasize-blind random-forest baseline pipeline.
	RFHOCTuner = core.RFHOCTuner
	// Options configures the pipeline (training budget, HM, GA).
	Options = core.Options
	// TuneResult is an end-to-end tuning outcome.
	TuneResult = core.TuneResult
	// Overhead records the pipeline costs reported in Table 3.
	Overhead = core.Overhead
	// Executor abstracts the system that runs program-input pairs.
	Executor = core.Executor
	// ExecutorFunc adapts a plain function to Executor.
	ExecutorFunc = core.ExecutorFunc
	// BatchExecutor is an Executor that runs a whole chunk of collecting
	// jobs in one call; the collector prefers it when available.
	BatchExecutor = core.BatchExecutor
	// SimExecutor is the simulator-backed BatchExecutor.
	SimExecutor = core.SimExecutor
	// Model predicts execution time from configuration + datasize.
	Model = model.Model
	// Trainer fits a Model to collected data.
	Trainer = model.Trainer
	// HMOptions are the Hierarchical Modeling hyperparameters.
	HMOptions = hm.Options
	// GAOptions are the genetic-algorithm hyperparameters.
	GAOptions = ga.Options
	// GAResult is a search outcome with its convergence history.
	GAResult = ga.Result
)

// StandardSpace returns the 41-parameter Spark configuration space of
// Table 2, with the paper's value ranges and defaults.
func StandardSpace() *Space { return conf.StandardSpace() }

// StandardCluster returns the paper's testbed: one master plus five
// 72-core/64 GB workers (432 cores, 384 GB total).
func StandardCluster() Cluster { return cluster.Standard() }

// DefaultConfig returns the Spark-team default configuration.
func DefaultConfig() Config { return conf.StandardSpace().Default() }

// ExpertConfig returns the configuration an expert derives from the Spark
// and Cloudera tuning guides for the given cluster (§5.6's manual
// baseline).
func ExpertConfig(space *Space, cl Cluster) Config { return expert.Config(space, cl) }

// Workloads returns the six evaluated programs in the paper's order:
// PageRank, KMeans, Bayes, NWeight, WordCount, TeraSort.
func Workloads() []*Workload { return workloads.All() }

// WorkloadByAbbr looks a workload up by its two-letter code ("PR", "KM",
// "BA", "NW", "WC", "TS").
func WorkloadByAbbr(abbr string) (*Workload, error) { return workloads.ByAbbr(abbr) }

// NewSimulator returns a deterministic in-memory-cluster simulator over
// cl.
func NewSimulator(cl Cluster, seed int64) *Simulator { return sparksim.New(cl, seed) }

// NewSimExecutor adapts a simulator and a program to the Executor
// interface the tuning pipeline consumes. The returned executor also
// implements BatchExecutor, so the collector batches each worker's chunk
// through one sparksim.RunBatch call.
func NewSimExecutor(sim *Simulator, p *Program) *SimExecutor {
	return core.NewSimExecutor(sim, p)
}

// NewTuner wires a DAC tuner for workload w simulated on cl. The seed
// fixes both the simulator and the pipeline's randomness.
func NewTuner(w *Workload, cl Cluster, opt Options) *Tuner {
	sim := sparksim.New(cl, opt.Seed+7)
	return &Tuner{
		Space: conf.StandardSpace(),
		Exec:  NewSimExecutor(sim, &w.Program),
		Opt:   opt,
	}
}

// NewRFHOCTuner wires the RFHOC baseline for workload w simulated on cl.
func NewRFHOCTuner(w *Workload, cl Cluster, opt Options) *RFHOCTuner {
	sim := sparksim.New(cl, opt.Seed+7)
	return &RFHOCTuner{
		Space: conf.StandardSpace(),
		Exec:  NewSimExecutor(sim, &w.Program),
		Opt:   opt,
	}
}

// HadoopSpace returns the ~10-parameter Hadoop configuration space used
// by the motivation study (Fig. 2).
func HadoopSpace() *Space { return hadoopsim.Space() }

// NewHadoopSimulator returns the on-disk (MapReduce-style) cluster
// simulator used by the motivation study.
func NewHadoopSimulator(cl Cluster, seed int64) *HadoopSimulator {
	return hadoopsim.New(cl, seed)
}
