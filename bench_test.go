// Benchmarks regenerating every table and figure of the paper at reduced
// scale (see cmd/experiments for the paper-scale settings), plus the
// ablation benchmarks for the design choices called out in DESIGN.md §5.
// Custom metrics attached to each benchmark report the experiment's
// headline quantity (speedups, error percentages, growth factors) so
// `go test -bench . -benchmem` doubles as a results summary.
package dac_test

import (
	"math/rand"
	"sync"
	"testing"

	dac "repro"
	"repro/internal/experiments"
	"repro/internal/hm"
	"repro/internal/model"
	"repro/internal/rf"
	"repro/internal/sparksim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// benchScale is the reduced-cost experiment configuration shared by the
// figure benchmarks.
func benchScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.NTrain = 400
	sc.NTest = 120
	sc.Fig2Runs = 120
	return sc
}

// ---- Tables -----------------------------------------------------------------

func BenchmarkTable1Applications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2ParameterSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3Overhead(b *testing.B) {
	outcomes := tuneAllOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.RenderTable3(outcomes) == "" {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(outcomes[0].Overhead.CollectClusterHours, "collect-cluster-hours")
}

// ---- Figures ----------------------------------------------------------------

func BenchmarkFig2DatasizeSensitivity(b *testing.B) {
	sc := benchScale()
	var rows []experiments.Fig2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig2(sc)
	}
	b.ReportMetric(rows[0].GrowthFactor, "sparkKM-growth")
	b.ReportMetric(rows[1].GrowthFactor, "hadoopKM-growth")
}

func BenchmarkFig3BaselineModelError(b *testing.B) {
	sc := benchScale()
	var rows []experiments.ModelErrRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig3(sc)
	}
	avg := rows[len(rows)-1]
	b.ReportMetric(avg.Err["RF"], "RF-avg-err-pct")
	b.ReportMetric(avg.Err["SVM"], "SVM-avg-err-pct")
}

func BenchmarkFig7TrainingSetSize(b *testing.B) {
	sc := benchScale()
	var pts []experiments.Fig7Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig7(sc, []int{100, 200, 400})
	}
	b.ReportMetric(pts[len(pts)-1].Mean, "final-mean-err-pct")
}

func BenchmarkFig8HMHyperparams(b *testing.B) {
	sc := benchScale()
	var curves []experiments.Fig8Curve
	for i := 0; i < b.N; i++ {
		curves = experiments.Fig8(sc, []float64{0.01, 0.05}, []int{1, 5}, []int{100, 400})
	}
	b.ReportMetric(curves[len(curves)-1].Err[len(curves[len(curves)-1].Err)-1], "tc5-final-err-pct")
}

func BenchmarkFig9ModelComparison(b *testing.B) {
	sc := benchScale()
	var rows []experiments.ModelErrRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig9(sc)
	}
	avg := rows[len(rows)-1]
	b.ReportMetric(avg.Err["HM"], "HM-avg-err-pct")
	b.ReportMetric(avg.Err["RF"], "RF-avg-err-pct")
}

func BenchmarkFig10ErrorScatter(b *testing.B) {
	sc := benchScale()
	var pr []experiments.Fig10Pair
	for i := 0; i < b.N; i++ {
		pr, _ = experiments.Fig10(sc, 60)
	}
	errs := make([]float64, len(pr))
	for i, p := range pr {
		errs[i] = model.RelErr(p.PredSec, p.RealSec)
	}
	b.ReportMetric(stats.Mean(errs)*100, "PR-scatter-err-pct")
}

// tuneAllOnce caches the expensive end-to-end tuning shared by the
// Fig. 11–14 and Table 3 benchmarks.
var (
	tuneOnce     sync.Once
	tuneOutcomes []experiments.TuneOutcome
)

func tuneAllOnce(b *testing.B) []experiments.TuneOutcome {
	b.Helper()
	tuneOnce.Do(func() {
		tuneOutcomes = experiments.TuneAll(benchScale())
	})
	return tuneOutcomes
}

func BenchmarkFig11GAConvergence(b *testing.B) {
	outcomes := tuneAllOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.RenderFig11(outcomes) == "" {
			b.Fatal("empty render")
		}
	}
	b.ReportMetric(float64(outcomes[0].GA.Converged), "PR-converge-iter")
}

func BenchmarkFig12Speedups(b *testing.B) {
	outcomes := tuneAllOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.RenderFig12a(outcomes) == "" || experiments.RenderFig12b(outcomes) == "" {
			b.Fatal("empty render")
		}
	}
	var speedups []float64
	for _, o := range outcomes {
		for j := range o.DACSec {
			speedups = append(speedups, o.DefaultSec[j]/o.DACSec[j])
		}
	}
	b.ReportMetric(stats.Mean(speedups), "avg-speedup-vs-default")
	b.ReportMetric(stats.GeoMean(speedups), "geomean-speedup-vs-default")
}

func BenchmarkFig13KMeansStages(b *testing.B) {
	outcomes := tuneAllOnce(b)
	idx := []int{0, 2, 4}
	var data map[int][]experiments.Fig13Stage
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data = experiments.Fig13(benchScale(), outcomes, idx)
	}
	cells := data[4]
	b.ReportMetric(cells[0].GCSec, "default-GC-sec-D5")
	b.ReportMetric(cells[2].GCSec, "DAC-GC-sec-D5")
}

func BenchmarkFig14TeraSortStage2(b *testing.B) {
	outcomes := tuneAllOnce(b)
	var rows []experiments.Fig14Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig14(benchScale(), outcomes)
	}
	// Last row is DAC at D5; first is default at D1.
	b.ReportMetric(rows[len(rows)-1].Stage2, "DAC-stage2-sec-D5")
	b.ReportMetric(rows[2].Stage2, "DAC-stage2-sec-D1")
}

// ---- Ablations (DESIGN.md §5) ------------------------------------------------

// BenchmarkAblationHMOrder compares HM at order 1, HM allowed to recurse,
// and a plain random forest on the same data.
func BenchmarkAblationHMOrder(b *testing.B) {
	w, _ := workloads.ByAbbr("PR")
	train := collectBench(w, 500, 1)
	test := collectBench(w, 150, 2)
	var e1, e2, eRF float64
	for i := 0; i < b.N; i++ {
		m1, err := hm.Train(train, hm.Options{Trees: 400, LearningRate: 0.1, TreeComplexity: 5, MaxOrder: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		m2, err := hm.Train(train, hm.Options{Trees: 400, LearningRate: 0.1, TreeComplexity: 5,
			MaxOrder: 3, TargetAccuracy: 0.97, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		mRF, err := rf.Train(train, rf.Options{Trees: 150, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		e1 = model.Evaluate(m1, test).Mean * 100
		e2 = model.Evaluate(m2, test).Mean * 100
		eRF = model.Evaluate(mRF, test).Mean * 100
	}
	b.ReportMetric(e1, "order1-err-pct")
	b.ReportMetric(e2, "orderN-err-pct")
	b.ReportMetric(eRF, "rf-err-pct")
}

// BenchmarkAblationSearchers compares GA against recursive random search,
// pattern search, and plain random sampling on the same trained model
// with equal evaluation budgets (§3.3's argument for GA).
func BenchmarkAblationSearchers(b *testing.B) {
	w, _ := workloads.ByAbbr("TS")
	train := collectBench(w, 500, 3)
	m, err := hm.Train(train, hm.Options{Trees: 400, LearningRate: 0.1, TreeComplexity: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	space := dac.StandardSpace()
	target := w.InputMB(30)
	x := make([]float64, space.Len()+1)
	obj := func(v []float64) float64 {
		copy(x, v)
		x[len(x)-1] = target
		return m.Predict(x)
	}
	const budget = 2000
	var gaBest, rrsBest, patBest, rndBest, annBest float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gaRes := dac.GAMinimize(space, obj, nil, dac.GAOptions{PopSize: 40, Generations: budget/40 - 1, Seed: 1})
		gaBest = gaRes.BestFitness
		rrsBest = dac.RecursiveRandomSearch(space, obj, budget, 1).BestFitness
		patBest = dac.PatternSearch(space, obj, budget, 1).BestFitness
		rndBest = dac.RandomSearch(space, obj, budget, 1).BestFitness
		annBest = dac.AnnealSearch(space, obj, budget, 1).BestFitness
	}
	b.ReportMetric(gaBest, "GA-best-sec")
	b.ReportMetric(rrsBest, "RRS-best-sec")
	b.ReportMetric(patBest, "pattern-best-sec")
	b.ReportMetric(rndBest, "random-best-sec")
	b.ReportMetric(annBest, "anneal-best-sec")
}

// BenchmarkAblationDatasizeFeature trains HM with and without the dsize
// column — the paper's core thesis is that the column matters.
func BenchmarkAblationDatasizeFeature(b *testing.B) {
	w, _ := workloads.ByAbbr("KM")
	train := collectBench(w, 500, 4)
	test := collectBench(w, 150, 5)
	// Strip the final (dsize) column for the blind variant.
	strip := func(ds *model.Dataset) *model.Dataset {
		out := model.NewDataset(ds.Names[:len(ds.Names)-1])
		for i, row := range ds.Features {
			out.Add(row[:len(row)-1], ds.Targets[i])
		}
		return out
	}
	blindTrain, blindTest := strip(train), strip(test)
	opt := hm.Options{Trees: 400, LearningRate: 0.1, TreeComplexity: 5, Seed: 1}
	var with, without float64
	for i := 0; i < b.N; i++ {
		mW, err := hm.Train(train, opt)
		if err != nil {
			b.Fatal(err)
		}
		mB, err := hm.Train(blindTrain, opt)
		if err != nil {
			b.Fatal(err)
		}
		with = model.Evaluate(mW, test).Mean * 100
		without = model.Evaluate(mB, blindTest).Mean * 100
	}
	b.ReportMetric(with, "with-dsize-err-pct")
	b.ReportMetric(without, "without-dsize-err-pct")
}

// BenchmarkAblationSimMechanisms disables the simulator's GC, spill and
// OOM mechanisms one at a time and reports how much of the default
// configuration's pathology each produces.
func BenchmarkAblationSimMechanisms(b *testing.B) {
	w, _ := workloads.ByAbbr("WC")
	cl := dac.StandardCluster()
	cfg := dac.StandardSpace().Default()
	mb := w.InputMB(160)
	variants := map[string]sparksim.Options{
		"full":    {},
		"noGC":    {DisableGC: true},
		"noSpill": {DisableSpill: true, DisableOOM: true},
		"noOOM":   {DisableOOM: true},
	}
	times := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for name, opt := range variants {
			sim := &sparksim.Simulator{Cluster: cl, Seed: 1, Opt: opt}
			times[name] = sim.Run(&w.Program, mb, cfg).TotalSec
		}
	}
	b.ReportMetric(times["full"], "full-sec")
	b.ReportMetric(times["noGC"], "noGC-sec")
	b.ReportMetric(times["noSpill"], "noSpill-sec")
}

// BenchmarkAblationSampling compares the paper's uniform configuration
// generator against Latin hypercube sampling at the same collecting
// budget, reporting each design's HM test error.
func BenchmarkAblationSampling(b *testing.B) {
	w, _ := workloads.ByAbbr("TS")
	cl := dac.StandardCluster()
	test := collectBench(w, 150, 9)
	var uniErr, lhsErr float64
	for i := 0; i < b.N; i++ {
		run := func(s dac.Sampler) float64 {
			tuner := dac.NewTuner(w, cl, dac.Options{
				NTrain: 400,
				HM:     dac.HMOptions{Trees: 300, LearningRate: 0.1, TreeComplexity: 5},
				Seed:   1,
			})
			tuner.Opt.Sampler = s
			sizes := tuner.TrainingSizesMB(w.InputMB(10), w.InputMB(50))
			set, _, err := tuner.Collect(sizes)
			if err != nil {
				b.Fatal(err)
			}
			m, _, err := tuner.Model(set)
			if err != nil {
				b.Fatal(err)
			}
			return dac.Evaluate(m, test).Mean * 100
		}
		uniErr = run(dac.UniformSampler{})
		lhsErr = run(dac.LatinHypercubeSampler{})
	}
	b.ReportMetric(uniErr, "uniform-err-pct")
	b.ReportMetric(lhsErr, "lhs-err-pct")
}

// BenchmarkAblationRobustSearch compares plain model-minimizing search
// against the uncertainty-penalized variant (an extension motivated by the
// reproduction's Fig. 12b analysis): both tune TeraSort for 30 GB, and the
// metrics report the *measured* time of each argmin configuration.
func BenchmarkAblationRobustSearch(b *testing.B) {
	w, _ := workloads.ByAbbr("TS")
	cl := dac.StandardCluster()
	target := w.InputMB(30)
	var plainSec, robustSec float64
	for i := 0; i < b.N; i++ {
		run := func(robust bool) float64 {
			opt := dac.Options{
				NTrain: 500,
				HM:     dac.HMOptions{Trees: 300, LearningRate: 0.1, TreeComplexity: 5},
				GA:     dac.GAOptions{PopSize: 40, Generations: 30},
				Seed:   1,
			}
			opt.RobustSearch = robust
			tuner := dac.NewTuner(w, cl, opt)
			res, err := tuner.Tune(w.InputMB(10), w.InputMB(50), []float64{target})
			if err != nil {
				b.Fatal(err)
			}
			evalSim := dac.NewSimulator(cl, 55)
			return evalSim.Run(&w.Program, target, res.Best[target]).TotalSec
		}
		plainSec = run(false)
		robustSec = run(true)
	}
	b.ReportMetric(plainSec, "plain-argmin-sec")
	b.ReportMetric(robustSec, "robust-argmin-sec")
}

// BenchmarkExtensionKVStore runs the §2.1 generality extension: the same
// pipeline tuning the HBase-style key-value store.
func BenchmarkExtensionKVStore(b *testing.B) {
	w := dac.KVReadHeavy()
	var speedup float64
	for i := 0; i < b.N; i++ {
		tuner := dac.NewKVTuner(w, dac.Options{
			NTrain: 300,
			HM:     dac.HMOptions{Trees: 150, LearningRate: 0.1, TreeComplexity: 5},
			GA:     dac.GAOptions{PopSize: 25, Generations: 15},
			Seed:   1,
		})
		target := 20.0 * 1024
		res, err := tuner.Tune(10*1024, 100*1024, []float64{target})
		if err != nil {
			b.Fatal(err)
		}
		sim := dac.NewKVSimulator(55)
		speedup = sim.Run(w, target, dac.KVSpace().Default()) / sim.Run(w, target, res.Best[target])
	}
	b.ReportMetric(speedup, "kv-speedup-vs-default")
}

// collectBench gathers a bench-sized dataset through the public facade.
func collectBench(w *workloads.Workload, n int, seed int64) *model.Dataset {
	sim := dac.NewSimulator(dac.StandardCluster(), 42)
	space := dac.StandardSpace()
	rng := rand.New(rand.NewSource(seed))
	set := dac.NewPerfSet(space)
	lo, hi := w.Sizes[0]*0.8, w.Sizes[len(w.Sizes)-1]*1.1
	for i := 0; i < n; i++ {
		cfg := space.Random(rng)
		units := lo + rng.Float64()*(hi-lo)
		mb := w.InputMB(units)
		set.Add(cfg, mb, sim.Run(&w.Program, mb, cfg).TotalSec)
	}
	return set.ToDataset()
}
