package dac

import "repro/internal/kvsim"

// The paper observes (§2.1) that DAC's principles apply to any system with
// a large configuration space, naming HBase. This file exposes the
// repository's demonstration of that claim: an HBase-style LSM key-value
// store substrate tuned through the exact same pipeline — only the Space
// and the Executor change.

// KV-store extension types.
type (
	// KVSimulator is the LSM/HBase-style region-server simulator.
	KVSimulator = kvsim.Simulator
	// KVWorkload is a YCSB-style request mix.
	KVWorkload = kvsim.Workload
)

// KVSpace returns the key-value store's 16-parameter configuration space.
func KVSpace() *Space { return kvsim.Space() }

// NewKVSimulator returns a region-server simulator with typical hardware.
func NewKVSimulator(seed int64) *KVSimulator { return kvsim.New(seed) }

// KVReadHeavy, KVWriteHeavy and KVScanHeavy return the packaged workload
// mixes (YCSB B, YCSB A, and a large-value scan mix).
func KVReadHeavy() KVWorkload  { return kvsim.ReadHeavy() }
func KVWriteHeavy() KVWorkload { return kvsim.WriteHeavy() }
func KVScanHeavy() KVWorkload  { return kvsim.ScanHeavy() }

// NewKVTuner wires the DAC pipeline to the key-value store: the identical
// collect → model → search loop over a different substrate and space.
func NewKVTuner(w KVWorkload, opt Options) *Tuner {
	sim := kvsim.New(opt.Seed + 7)
	return &Tuner{
		Space: kvsim.Space(),
		Exec: ExecutorFunc(func(cfg Config, dsizeMB float64) float64 {
			return sim.Run(w, dsizeMB, cfg)
		}),
		Opt: opt,
	}
}
