// Quickstart: tune TeraSort for a 30 GB input on the paper's simulated
// cluster and compare the tuned configuration against the Spark defaults
// and the expert rules.
//
// Run with:
//
//	go run ./examples/quickstart
//
// The example uses a reduced training budget so it finishes in a few
// seconds; pass -full for the paper-scale pipeline (2000 training runs,
// 3600 boosted trees).
package main

import (
	"flag"
	"fmt"
	"log"

	dac "repro"
)

func main() {
	full := flag.Bool("full", false, "use the paper-scale training budget")
	flag.Parse()

	w, err := dac.WorkloadByAbbr("TS")
	if err != nil {
		log.Fatal(err)
	}
	cl := dac.StandardCluster()

	opt := dac.Options{
		NTrain: 600,
		HM:     dac.HMOptions{Trees: 600, LearningRate: 0.05, TreeComplexity: 5},
		GA:     dac.GAOptions{PopSize: 60, Generations: 60},
		Seed:   1,
	}
	if *full {
		opt.NTrain = 2000
		opt.HM = dac.HMOptions{Trees: 3600, LearningRate: 0.05, TreeComplexity: 5}
		opt.GA = dac.GAOptions{PopSize: 100, Generations: 100}
	}

	tuner := dac.NewTuner(w, cl, opt)
	target := w.InputMB(30) // 30 GB
	lo, hi := w.InputMB(w.Sizes[0])*0.8, w.InputMB(w.Sizes[len(w.Sizes)-1])*1.1

	fmt.Printf("Tuning %s for 30 GB on %d cores / %.0f GB...\n",
		w.Name, cl.TotalCores(), cl.TotalMemoryMB()/1024)
	res, err := tuner.Tune(lo, hi, []float64{target})
	if err != nil {
		log.Fatal(err)
	}
	best := res.Best[target]

	// Evaluate against the baselines with a fresh simulator seed (these
	// are new "runs", not the training executions).
	sim := dac.NewSimulator(cl, 99)
	space := dac.StandardSpace()
	tDAC := sim.Run(&w.Program, target, best).TotalSec
	tDef := sim.Run(&w.Program, target, space.Default()).TotalSec
	tExp := sim.Run(&w.Program, target, dac.ExpertConfig(space, cl)).TotalSec

	fmt.Printf("\n%-22s %10s %10s\n", "configuration", "time (s)", "speedup")
	fmt.Printf("%-22s %10.1f %10s\n", "Spark defaults", tDef, "1.0x")
	fmt.Printf("%-22s %10.1f %9.1fx\n", "expert (tuning guide)", tExp, tDef/tExp)
	fmt.Printf("%-22s %10.1f %9.1fx\n", "DAC", tDAC, tDef/tDAC)

	fmt.Printf("\nkey tuned parameters:\n")
	for _, name := range []string{
		"spark.executor.memory", "spark.executor.cores",
		"spark.default.parallelism", "spark.serializer",
		"spark.memory.fraction", "spark.shuffle.compress",
	} {
		i, _ := space.Index(name)
		p := space.Param(i)
		fmt.Printf("  %-28s %s (default %s)\n", name,
			p.FormatValue(best.Get(name)), p.FormatValue(p.Default))
	}
	fmt.Printf("\npipeline overhead: %.1f simulated cluster hours collecting, %.1fs modeling, %.1fs searching\n",
		res.Overhead.CollectClusterHours, res.Overhead.ModelTrainSec, res.Overhead.SearchSec)
}
