// Model comparison: train the paper's five modeling techniques (response
// surface, neural network, SVR, random forest, Hierarchical Modeling) on
// the same collected data for one workload and report the Eq. 2 prediction
// error of each — the per-program view behind Figs. 3 and 9.
//
// Run with:
//
//	go run ./examples/modelcompare [-workload PR] [-n 1200]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	dac "repro"
)

func main() {
	abbr := flag.String("workload", "PR", "workload abbreviation (PR, KM, BA, NW, WC, TS)")
	n := flag.Int("n", 1200, "training vectors to collect")
	flag.Parse()

	w, err := dac.WorkloadByAbbr(*abbr)
	if err != nil {
		log.Fatal(err)
	}
	cl := dac.StandardCluster()
	sim := dac.NewSimulator(cl, 42)
	space := dac.StandardSpace()

	// Collect training and test sets the way the paper's collecting
	// component does: random configurations across ten dataset sizes.
	collect := func(count int, seed int64) *dac.Dataset {
		rng := rand.New(rand.NewSource(seed))
		set := dac.NewPerfSet(space)
		lo := w.Sizes[0] * 0.8
		hi := w.Sizes[len(w.Sizes)-1] * 1.1
		for i := 0; i < count; i++ {
			cfg := space.Random(rng)
			units := lo + rng.Float64()*(hi-lo)
			mb := w.InputMB(units)
			set.Add(cfg, mb, sim.Run(&w.Program, mb, cfg).TotalSec)
		}
		return set.ToDataset()
	}
	fmt.Printf("collecting %d training + %d test vectors for %s...\n", *n, *n/4, w.Name)
	train := collect(*n, 1)
	test := collect(*n/4, 2)

	fmt.Printf("\n%-5s %10s %10s %12s\n", "model", "mean err", "max err", "train time")
	for _, tr := range dac.Trainers() {
		start := time.Now()
		m, err := tr.Train(train)
		if err != nil {
			fmt.Printf("%-5s failed: %v\n", tr.Name(), err)
			continue
		}
		e := dac.Evaluate(m, test)
		fmt.Printf("%-5s %9.1f%% %9.1f%% %12v\n",
			tr.Name(), e.Mean*100, e.Max*100, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\n(the paper's Fig. 9: HM averages 7.6% across programs; RS/ANN/SVM/RF 15-30%)")
}
