// KV-store tuning: the paper's generality claim (§2.1) in action. DAC's
// pipeline is substrate-agnostic — here the same collect → model → search
// loop tunes an HBase-style LSM key-value store's 16 parameters for a
// read-heavy workload, at two dataset sizes whose hot sets sit on opposite
// sides of the block-cache capacity.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	dac "repro"
)

func main() {
	w := dac.KVReadHeavy()
	tuner := dac.NewKVTuner(w, dac.Options{
		NTrain: 1200,
		HM:     dac.HMOptions{Trees: 800, LearningRate: 0.05, TreeComplexity: 5},
		GA:     dac.GAOptions{PopSize: 60, Generations: 60},
		Seed:   1,
	})

	// Tune for a 20 GB table and a 200 GB table: the first's hot set
	// fits a big block cache, the second's does not.
	small, large := 20.0*1024, 200.0*1024
	res, err := tuner.Tune(10*1024, 250*1024, []float64{small, large})
	if err != nil {
		log.Fatal(err)
	}

	sim := dac.NewKVSimulator(99)
	space := dac.KVSpace()
	def := space.Default()

	fmt.Printf("%-12s %14s %14s %10s\n", "table", "default (s)", "tuned (s)", "speedup")
	for _, mb := range []float64{small, large} {
		tDef := sim.Run(w, mb, def)
		tTuned := sim.Run(w, mb, res.Best[mb])
		fmt.Printf("%9.0f GB %14.1f %14.1f %9.1fx\n", mb/1024, tDef, tTuned, tDef/tTuned)
	}

	fmt.Println("\ndatasize-aware choices (small table vs large table):")
	for _, name := range []string{
		"hbase.regionserver.heapsize",
		"hfile.block.cache.size",
		"hbase.hfile.compression",
		"hbase.hstore.compactionThreshold",
	} {
		i, _ := space.Index(name)
		p := space.Param(i)
		fmt.Printf("  %-36s %8s -> %8s (default %s)\n", name,
			p.FormatValue(res.Best[small].Get(name)),
			p.FormatValue(res.Best[large].Get(name)),
			p.FormatValue(p.Default))
	}
	fmt.Println("\nSame pipeline, different substrate: only the Space and the Executor changed.")
}
