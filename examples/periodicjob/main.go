// Periodic long job: the paper's motivating scenario (§1). An e-commerce
// company sorts its product table every night; the table grows over the
// quarter, so the input dataset size drifts while the program stays the
// same. This example compares three operating policies over a 12-week
// season:
//
//  1. run the Spark defaults every night;
//  2. tune once for the first week's size and freeze the configuration
//     (what a datasize-blind tuner effectively gives you);
//  3. DAC: keep the trained model and re-search a configuration whenever
//     the datasize changes — searching costs milliseconds because only
//     the model is queried, not the cluster.
//
// Run with:
//
//	go run ./examples/periodicjob
package main

import (
	"fmt"
	"log"

	dac "repro"
)

func main() {
	w, err := dac.WorkloadByAbbr("TS") // nightly product sort
	if err != nil {
		log.Fatal(err)
	}
	cl := dac.StandardCluster()

	// The product table grows ~8% per week from 12 GB.
	weeks := 12
	sizesGB := make([]float64, weeks)
	sizesGB[0] = 12
	for i := 1; i < weeks; i++ {
		sizesGB[i] = sizesGB[i-1] * 1.08
	}

	// One collection + one model, up front.
	tuner := dac.NewTuner(w, cl, dac.Options{
		NTrain: 800,
		HM:     dac.HMOptions{Trees: 800, LearningRate: 0.05, TreeComplexity: 5},
		GA:     dac.GAOptions{PopSize: 60, Generations: 60},
		Seed:   1,
	})
	targets := make([]float64, weeks)
	for i, gb := range sizesGB {
		targets[i] = w.InputMB(gb)
	}
	res, err := tuner.Tune(w.InputMB(10), w.InputMB(50), targets)
	if err != nil {
		log.Fatal(err)
	}

	// Policy 2's frozen configuration: the week-1 tuning result.
	frozen := res.Best[targets[0]]

	sim := dac.NewSimulator(cl, 123) // the production cluster
	space := dac.StandardSpace()
	defCfg := space.Default()

	var totDef, totFrozen, totDAC float64
	fmt.Printf("%-6s %8s %12s %12s %12s\n", "week", "size GB", "defaults(s)", "frozen(s)", "DAC(s)")
	for i := range sizesGB {
		mb := targets[i]
		tDef := sim.Run(&w.Program, mb, defCfg).TotalSec
		tFro := sim.Run(&w.Program, mb, frozen).TotalSec
		tDAC := sim.Run(&w.Program, mb, res.Best[mb]).TotalSec
		totDef += tDef
		totFrozen += tFro
		totDAC += tDAC
		fmt.Printf("%-6d %8.1f %12.1f %12.1f %12.1f\n", i+1, sizesGB[i], tDef, tFro, tDAC)
	}
	fmt.Printf("\nseason totals: defaults %.0fs, frozen %.0fs, DAC %.0fs\n", totDef, totFrozen, totDAC)
	fmt.Printf("DAC saves %.1f%% over the frozen week-1 configuration and %.1fx over defaults.\n",
		(1-totDAC/totFrozen)*100, totDef/totDAC)
	fmt.Printf("(re-searching per size used the already-trained model: %.2fs of wall clock total)\n",
		res.Overhead.SearchSec)
}
