// What-if exploration: use the simulator directly to sweep one parameter
// at a time and watch the mechanisms the paper attributes Spark's
// configuration cliffs to — spills and GC as executor memory shrinks, and
// the serializer's effect on a shuffle-heavy job.
//
// Run with:
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	dac "repro"
)

func main() {
	cl := dac.StandardCluster()
	sim := dac.NewSimulator(cl, 7)
	space := dac.StandardSpace()

	// Sweep executor memory for WordCount at 120 GB: the spill + GC wall.
	wc, err := dac.WorkloadByAbbr("WC")
	if err != nil {
		log.Fatal(err)
	}
	mb := wc.InputMB(120)
	fmt.Println("WordCount, 120 GB — executor memory sweep (spark.executor.cores=6):")
	fmt.Printf("%10s %10s %10s %10s %10s\n", "mem MB", "time s", "GC s", "spill GB", "failures")
	for _, mem := range []float64{1024, 2048, 4096, 6144, 8192, 10240, 12288} {
		cfg := space.Default()
		cfg.Set("spark.executor.memory", mem)
		cfg.Set("spark.executor.cores", 6)
		res := sim.Run(&wc.Program, mb, cfg)
		fmt.Printf("%10.0f %10.1f %10.1f %10.1f %10d\n",
			mem, res.TotalSec, res.GCSec, res.SpillMB/1024, res.TasksFailed)
	}

	// Serializer × shuffle compression for TeraSort at 40 GB.
	ts, err := dac.WorkloadByAbbr("TS")
	if err != nil {
		log.Fatal(err)
	}
	mb = ts.InputMB(40)
	fmt.Println("\nTeraSort, 40 GB — serializer and shuffle compression:")
	fmt.Printf("%8s %10s %10s\n", "ser", "compress", "time s")
	for _, ser := range []string{"java", "kryo"} {
		for _, comp := range []bool{true, false} {
			cfg := space.Default()
			cfg.Set("spark.executor.memory", 8192)
			cfg.Set("spark.default.parallelism", 50)
			if ser == "kryo" {
				cfg.Set("spark.serializer", 1)
			}
			cfg.SetBool("spark.shuffle.compress", comp)
			res := sim.Run(&ts.Program, mb, cfg)
			fmt.Printf("%8s %10v %10.1f\n", ser, comp, res.TotalSec)
		}
	}

	// Parallelism sweep for PageRank: wave quantization and per-task
	// memory pressure pull in opposite directions.
	pr, err := dac.WorkloadByAbbr("PR")
	if err != nil {
		log.Fatal(err)
	}
	mb = pr.InputMB(1.6)
	fmt.Println("\nPageRank, 1.6M pages — spark.default.parallelism sweep (8 GB executors):")
	fmt.Printf("%6s %10s %10s\n", "par", "time s", "spill GB")
	for _, par := range []float64{8, 16, 24, 32, 40, 50} {
		cfg := space.Default()
		cfg.Set("spark.executor.memory", 8192)
		cfg.Set("spark.default.parallelism", par)
		res := sim.Run(&pr.Program, mb, cfg)
		fmt.Printf("%6.0f %10.1f %10.1f\n", par, res.TotalSec, res.SpillMB/1024)
	}
}
